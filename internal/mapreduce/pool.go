package mapreduce

import (
	"cmp"
	"sync"
	"unsafe"
)

// BufferPool recycles the engine's large scratch buffers across jobs
// and task attempts: map-side sorted-run pair slices, radix-sort
// scratch, merge-tree intermediates, group-boundary indexes, and the
// merged per-reducer key/value slices. At paper scale those buffers
// dominate the allocation profile — a pool turns the per-job churn
// into a handful of steady-state arrays. Pass one via Config.Pool;
// the same pool may (and should) serve every job of an execution.
//
// Lifecycle rules (DESIGN.md §4g):
//
//   - A buffer is recycled only where the engine holds the sole live
//     reference: discarded fault-injection attempts and lost
//     speculative racers (raceAttempt waits for both racers, so the
//     loser has fully stopped touching its buffers before the discard),
//     runs consumed by the merge tree, spilled runs after their
//     re-read, and reducer inputs after the whole reduce phase — every
//     retry and backup attempt included — has committed.
//   - Recycled buffers never alias committed output: reducer outputs
//     are freshly appended []O slices, and when a pool is set Reduce
//     implementations must not retain the values slice (or subslices
//     of it) after returning — copy what they keep, which every
//     reducer in this repository already does.
//   - Pools are type-erased (free lists of boxed slices): a Get whose
//     concrete type does not match the requesting job's K/V
//     instantiation is dropped on the floor, so one pool safely serves
//     heterogeneous job pipelines; the pool simply converges to the
//     types that dominate.
//   - A double-Put of the same buffer is dropped, not retained twice:
//     each free list remembers the backing-array identity of what it
//     holds, so two later Gets can never return aliasing slices whose
//     appends would corrupt each other's recycled runs.
//
// The free lists are deliberately NOT sync.Pools: a paper-scale shuffle
// allocates hundreds of megabytes per job, so the garbage collector
// runs many cycles mid-job and would evict sync.Pool entries between
// the merge phase's Put and the next job's map-phase Get — measured on
// the 1M-pair bench, that eviction forfeits most of the pooling win.
// Recycling here is explicit (sole-reference points only), so plain
// mutex-guarded stacks are safe, and each list is bounded so a one-off
// giant job cannot pin its scratch forever.
//
// A nil *BufferPool is valid everywhere and allocates exactly like the
// pool-free engine. BufferPool is safe for concurrent use.
type BufferPool struct {
	pairs freeList // *[]pair[K, V]
	keys  freeList // *[]K
	vals  freeList // *[]V
	u64s  freeList // *[]uint64 — radix rank scratch
	u32s  freeList // *[]uint32 — radix count scratch
	ints  freeList // *[]int — reduce group-boundary indexes
}

// maxPoolItems bounds each free list: at most this many buffers are
// retained per kind (a shuffle's steady state is one buffer per live
// (mapper, reducer) run plus merge-tree intermediates, far below the
// bound); further Puts are dropped for the collector.
const maxPoolItems = 2048

// freeList is a bounded LIFO of boxed slices. Get returns nil when
// empty; the caller type-asserts and falls back to allocation. Each
// entry carries the identity of its backing array so Put can reject a
// buffer the list already holds (a double-Put would otherwise make two
// later Gets alias the same memory).
type freeList struct {
	mu    sync.Mutex
	items []poolEntry
	held  map[uintptr]struct{} // backing arrays currently in items
}

type poolEntry struct {
	id  uintptr
	box any
}

func (f *freeList) Get() any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.items); n > 0 {
		e := f.items[n-1]
		f.items[n-1] = poolEntry{}
		f.items = f.items[:n-1]
		delete(f.held, e.id)
		return e.box
	}
	return nil
}

func (f *freeList) Put(id uintptr, box any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.held[id]; dup {
		return
	}
	if len(f.items) < maxPoolItems {
		if f.held == nil {
			f.held = make(map[uintptr]struct{})
		}
		f.held[id] = struct{}{}
		f.items = append(f.items, poolEntry{id, box})
	}
}

// bufID identifies a slice by the address of its backing array; callers
// guarantee cap > 0, so the address is never nil and stays unique for
// as long as the boxed slice keeps the array alive.
func bufID[T any](s []T) uintptr {
	return uintptr(unsafe.Pointer(unsafe.SliceData(s)))
}

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool { return &BufferPool{} }

// getPairs returns an empty pair slice for appending, recycled when
// the pool has one of the right type (whatever its capacity — the pool
// converges to the workload's run sizes), freshly allocated with the
// given capacity otherwise.
func getPairs[K cmp.Ordered, V any](p *BufferPool, capacity int) []pair[K, V] {
	if p != nil {
		if v, ok := p.pairs.Get().(*[]pair[K, V]); ok && v != nil {
			return (*v)[:0]
		}
	}
	return make([]pair[K, V], 0, capacity)
}

// getPairsLen returns a pair slice of length n for indexed writes.
func getPairsLen[K cmp.Ordered, V any](p *BufferPool, n int) []pair[K, V] {
	if p != nil {
		if v, ok := p.pairs.Get().(*[]pair[K, V]); ok && v != nil && cap(*v) >= n {
			return (*v)[:n]
		}
	}
	return make([]pair[K, V], n)
}

func putPairs[K cmp.Ordered, V any](p *BufferPool, s []pair[K, V]) {
	if p == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	p.pairs.Put(bufID(s), &s)
}

func getKeys[K cmp.Ordered](p *BufferPool, capacity int) []K {
	if p != nil {
		if v, ok := p.keys.Get().(*[]K); ok && v != nil {
			return (*v)[:0]
		}
	}
	return make([]K, 0, capacity)
}

func putKeys[K cmp.Ordered](p *BufferPool, s []K) {
	if p == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	p.keys.Put(bufID(s), &s)
}

func getVals[V any](p *BufferPool, capacity int) []V {
	if p != nil {
		if v, ok := p.vals.Get().(*[]V); ok && v != nil {
			return (*v)[:0]
		}
	}
	return make([]V, 0, capacity)
}

func putVals[V any](p *BufferPool, s []V) {
	if p == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	p.vals.Put(bufID(s), &s)
}

// getU64s returns a length-n scratch slice; contents are arbitrary.
func getU64s(p *BufferPool, n int) []uint64 {
	if p != nil {
		if v, ok := p.u64s.Get().(*[]uint64); ok && v != nil && cap(*v) >= n {
			return (*v)[:n]
		}
	}
	return make([]uint64, n)
}

func putU64s(p *BufferPool, s []uint64) {
	if p == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	p.u64s.Put(bufID(s), &s)
}

// getU32sZero returns a length-n scratch slice with every element
// zeroed (the radix counting pass requires clean counters).
func getU32sZero(p *BufferPool, n int) []uint32 {
	if p != nil {
		if v, ok := p.u32s.Get().(*[]uint32); ok && v != nil && cap(*v) >= n {
			s := (*v)[:n]
			clear(s)
			return s
		}
	}
	return make([]uint32, n)
}

func putU32s(p *BufferPool, s []uint32) {
	if p == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	p.u32s.Put(bufID(s), &s)
}

func getInts(p *BufferPool, capacity int) []int {
	if p != nil {
		if v, ok := p.ints.Get().(*[]int); ok && v != nil {
			return (*v)[:0]
		}
	}
	return make([]int, 0, capacity)
}

func putInts(p *BufferPool, s []int) {
	if p == nil || cap(s) == 0 {
		return
	}
	s = s[:0]
	p.ints.Put(bufID(s), &s)
}

// recycleBatches returns a discarded attempt's run buffers to the pool
// and removes any runs it spilled: the attempt is fully complete (a
// lost speculative racer has been awaited, a failed attempt has
// returned), so the engine holds the only reference.
func recycleBatches[K cmp.Ordered, V any](p *BufferPool, fs spillStore, batches []pairBatch[K, V]) {
	for r := range batches {
		putPairs(p, batches[r].pairs)
		batches[r].pairs = nil
		if batches[r].spill != "" {
			fs.Delete(batches[r].spill)
			batches[r].spill = ""
		}
	}
}
