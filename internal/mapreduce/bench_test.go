package mapreduce

import (
	"fmt"
	"testing"
)

// benchPairs synthesises one unsorted run of n pairs whose keys cycle
// pseudo-randomly over keyspace distinct values.
func benchPairs(n, keyspace, salt int) []pair[int64, int64] {
	ps := make([]pair[int64, int64], n)
	for i := range ps {
		k := (int64(i)*2654435761 + int64(salt)*40503) % int64(keyspace)
		if k < 0 {
			k += int64(keyspace)
		}
		ps[i] = pair[int64, int64]{key: k, val: int64(i)}
	}
	return ps
}

// sumCombine folds a key group to a single value — a classic
// Reduce-equivalent combiner for associative aggregation. Returning a
// prefix of the scratch slice (which the engine copies before reuse)
// keeps the combiner allocation-free.
func sumCombine(_ int64, vs []int64) []int64 {
	var sum int64
	for _, v := range vs {
		sum += v
	}
	vs[0] = sum
	return vs[:1]
}

// BenchmarkFinalizeRun isolates the map-side work the pipeline added:
// the key sort (radix via the integer-key ranker, or the comparison
// fallback), the optional combiner pass, and the byte-accounting fold
// over one mapper's per-reducer run.
func BenchmarkFinalizeRun(b *testing.B) {
	const n, keyspace = 1 << 16, 1 << 11
	pb := func(k, v int64) int { return 16 }
	rk := keyRanker[int64]()
	for _, bc := range []struct {
		name    string
		rank    func(int64) uint64
		combine func(int64, []int64) []int64
		bytes   func(int64, int64) int
	}{
		{"radix", rk, nil, nil},
		{"radix+bytes", rk, nil, pb},
		{"radix+combine", rk, sumCombine, nil},
		{"radix+combine+bytes", rk, sumCombine, pb},
		{"comparison-fallback", nil, nil, nil},
	} {
		b.Run(bc.name, func(b *testing.B) {
			src := benchPairs(n, keyspace, 1)
			run := make([]pair[int64, int64], n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(run, src)
				batch := pairBatch[int64, int64]{pairs: run}
				finalizeRun(&batch, bc.rank, bc.combine, bc.bytes, nil)
			}
		})
	}
}

// BenchmarkMergeRuns isolates the shuffle's per-reducer merge of
// pre-sorted mapper runs.
func BenchmarkMergeRuns(b *testing.B) {
	for _, nruns := range []int{2, 8} {
		b.Run(fmt.Sprintf("runs=%d", nruns), func(b *testing.B) {
			const per = 1 << 14
			batches := make([][]pairBatch[int64, int64], nruns)
			for m := range batches {
				batch := pairBatch[int64, int64]{pairs: benchPairs(per, 1<<11, m)}
				finalizeRun(&batch, keyRanker[int64](), nil, nil, nil)
				batches[m] = []pairBatch[int64, int64]{batch}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mergeRuns(batches, 0, nruns*per, nil)
			}
		})
	}
}

// BenchmarkGrouping compares the reduce-side group derivation: walking
// the merged run's contiguous key groups (pipeline) versus rebuilding a
// map[K][]V plus a key sort (legacy).
func BenchmarkGrouping(b *testing.B) {
	const n, keyspace = 1 << 17, 1 << 11
	batch := pairBatch[int64, int64]{pairs: benchPairs(n, keyspace, 1)}
	finalizeRun(&batch, keyRanker[int64](), nil, nil, nil)
	in := mergeRuns([][]pairBatch[int64, int64]{{batch}}, 0, n, nil)
	b.Run("pipeline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			groupStarts(in.keys, nil)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyGroups(in)
		}
	})
}

// benchEngineJob builds a shuffle-heavy aggregation job: records input
// rows, 8 pairs per row hashed over a keyspace-value key space.
func benchEngineJob(reducers, par, keyspace int, withBytes, withCombine bool) (*Job[int64, int64, int64, int64], func(int) []int64) {
	job := &Job[int64, int64, int64, int64]{
		Config: Config{Name: "bench", NumReducers: reducers, NumMappers: 8, Parallelism: par},
		Map: func(x int64, emit func(int64, int64)) error {
			for s := int64(0); s < 8; s++ {
				k := (x*2654435761 + s*40503) % int64(keyspace)
				if k < 0 {
					k += int64(keyspace)
				}
				emit(k, x)
			}
			return nil
		},
		Partition: func(k int64, n int) int { return int(k % int64(n)) },
		Reduce: func(k int64, vs []int64, emit func(int64)) error {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(sum)
			return nil
		},
	}
	if withBytes {
		job.PairBytes = func(k, v int64) int { return 16 }
	}
	if withCombine {
		job.Combine = sumCombine
	}
	input := func(records int) []int64 {
		in := make([]int64, records)
		for i := range in {
			in[i] = int64(i)
		}
		return in
	}
	return job, input
}

// BenchmarkEngine sweeps the full pipeline end to end over pairs ×
// reducers × parallelism, with and without PairBytes and Combine, at
// moderate key cardinality (100003 distinct keys).
func BenchmarkEngine(b *testing.B) {
	for _, records := range []int{1 << 14, 1 << 17} { // 128k / 1M pairs
		for _, reducers := range []int{16, 64} {
			for _, par := range []int{1, 8} {
				for _, variant := range []string{"plain", "bytes", "combine"} {
					name := fmt.Sprintf("pairs=%d/reducers=%d/par=%d/%s", records*8, reducers, par, variant)
					b.Run(name, func(b *testing.B) {
						job, mkInput := benchEngineJob(reducers, par, 100003, variant == "bytes", variant == "combine")
						input := mkInput(records)
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if _, _, err := job.Run(input); err != nil {
								b.Fatal(err)
							}
						}
					})
				}
			}
		}
	}
}

// BenchmarkShuffleHeavy1M is the PR's acceptance anchor: 1,048,576
// intermediate pairs with PairBytes set at 8-way parallelism and high
// key cardinality (~2^20 key space — the regime where reduce-side hash
// grouping thrashes allocation and the sorted-run pipeline stays
// linear), run through the legacy (pre-pipeline) shuffle and the
// sort-based pipeline in the same process so the speedup is measured
// like for like. The pooled mode additionally sets Config.Pool — the
// PR 8 acceptance gate is pooled allocs/op ≤ pipeline allocs/op / 1.5
// on this workload (see bench_pr8_test.go).
func BenchmarkShuffleHeavy1M(b *testing.B) {
	const records = 1 << 17 // 8 pairs each -> 1,048,576 pairs
	for _, mode := range []string{"legacy", "pipeline", "pooled"} {
		b.Run(mode, func(b *testing.B) {
			job, mkInput := benchEngineJob(64, 8, 1<<20, true, false)
			input := mkInput(records)
			legacyGrouping = mode == "legacy"
			defer func() { legacyGrouping = false }()
			if mode == "pooled" {
				job.Config.Pool = NewBufferPool()
				// Warm the pool: steady-state reuse, not first-run
				// growth, is what the anchor measures.
				if _, _, err := job.Run(input); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := job.Run(input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
