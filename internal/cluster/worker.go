package cluster

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"syscall"
	"time"

	"mwsjoin/internal/dfs"
	"mwsjoin/internal/mapreduce"
	"mwsjoin/internal/query"
	"mwsjoin/internal/spatial"
)

// WorkerConfig configures one cluster worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's control address (host:port).
	Coordinator string
	// Name identifies the worker to the coordinator; must be unique in
	// the cluster.
	Name string
	// DataAddr is the listen address of the worker's data plane
	// (default "127.0.0.1:0").
	DataAddr string
	// HeartbeatInterval paces the control-plane heartbeats (default
	// 500ms; the coordinator's timeout should be a small multiple).
	HeartbeatInterval time.Duration
	// ExchangeTimeout bounds one mesh rendezvous (default 60s).
	ExchangeTimeout time.Duration
	// DieAfterExchanges, when positive, kills the worker right before
	// its n-th mesh exchange of a session — the deterministic
	// mid-round fault the recovery tests and the check.sh SIGKILL
	// stanza inject. The default death is SIGKILL of the whole
	// process; OnDie overrides it for in-process tests.
	DieAfterExchanges int
	// DieInProcess makes DieAfterExchanges call Worker.Kill — dropping
	// every connection at once — instead of SIGKILLing the process, so
	// in-process tests observe exactly what peers and coordinator see
	// when a real worker process dies.
	DieInProcess bool
	// OnDie replaces the death behaviour entirely (rarely needed;
	// DieInProcess covers the in-process case).
	OnDie func()
	// Logf receives worker lifecycle logs. May be nil.
	Logf func(format string, args ...any)
}

// workerSession is the per-session state a worker retains across
// attempts: the private DFS holding the staged inputs and every chain
// checkpoint committed so far, which a Resume re-run recovers from.
type workerSession struct {
	fs     *dfs.FS
	meshes []*mesh
}

// Worker is one member of the cluster: it registers with the
// coordinator, heartbeats, and executes session attempts it is
// assigned, shuffling intermediate runs directly with its peers.
type Worker struct {
	cfg    WorkerConfig
	ctrl   net.Conn
	enc    *json.Encoder
	encMu  sync.Mutex
	dataLn net.Listener
	reg    *meshRegistry

	mu       sync.Mutex
	sessions map[string]*workerSession
	closed   bool

	done     chan struct{}
	ctrlDone chan struct{}
	wg       sync.WaitGroup
}

// Done closes when the worker's control connection to the coordinator
// is gone — a standalone worker process exits then.
func (w *Worker) Done() <-chan struct{} { return w.ctrlDone }

// StartWorker connects to the coordinator, registers, and starts the
// worker's control and data loops.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: worker needs a name")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.DataAddr == "" {
		cfg.DataAddr = "127.0.0.1:0"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	dataLn, err := net.Listen("tcp", cfg.DataAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker data listen: %w", err)
	}
	ctrl, err := net.Dial("tcp", cfg.Coordinator)
	if err != nil {
		dataLn.Close()
		return nil, fmt.Errorf("cluster: dial coordinator: %w", err)
	}
	w := &Worker{
		cfg:      cfg,
		ctrl:     ctrl,
		enc:      json.NewEncoder(ctrl),
		dataLn:   dataLn,
		reg:      newMeshRegistry(),
		sessions: make(map[string]*workerSession),
		done:     make(chan struct{}),
		ctrlDone: make(chan struct{}),
	}
	if err := w.send(message{Type: msgRegister, Name: cfg.Name, DataAddr: dataLn.Addr().String()}); err != nil {
		w.Close()
		return nil, fmt.Errorf("cluster: register: %w", err)
	}
	w.wg.Add(3)
	go func() { defer w.wg.Done(); serveData(dataLn, w.reg) }()
	go func() { defer w.wg.Done(); w.heartbeatLoop() }()
	go func() { defer w.wg.Done(); w.controlLoop() }()
	w.cfg.Logf("worker %s: registered with %s, data plane on %s", cfg.Name, cfg.Coordinator, dataLn.Addr())
	return w, nil
}

// DataAddr returns the worker's data-plane listen address.
func (w *Worker) DataAddr() string { return w.dataLn.Addr().String() }

// Close tears the worker down cleanly.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.done)
	var meshes []*mesh
	for _, s := range w.sessions {
		meshes = append(meshes, s.meshes...)
		s.meshes = nil
	}
	w.mu.Unlock()
	w.ctrl.Close()
	w.dataLn.Close()
	for _, m := range meshes {
		m.close()
	}
	w.wg.Wait()
	return nil
}

// Kill emulates abrupt worker death for in-process tests: every
// connection drops at once, with no goodbye — exactly what the
// coordinator and the surviving peers observe when a real worker
// process is SIGKILLed. Safe to call from a mesh onDie hook.
func (w *Worker) Kill() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	close(w.done)
	var meshes []*mesh
	for _, s := range w.sessions {
		meshes = append(meshes, s.meshes...)
		s.meshes = nil
	}
	w.mu.Unlock()
	w.ctrl.Close()
	w.dataLn.Close()
	for _, m := range meshes {
		m.close()
	}
}

func (w *Worker) send(m message) error {
	w.encMu.Lock()
	defer w.encMu.Unlock()
	return w.enc.Encode(m)
}

func (w *Worker) heartbeatLoop() {
	t := time.NewTicker(w.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			if err := w.send(message{Type: msgHeartbeat}); err != nil {
				return
			}
		}
	}
}

// controlLoop dispatches coordinator messages until the connection
// drops.
func (w *Worker) controlLoop() {
	defer close(w.ctrlDone)
	dec := json.NewDecoder(bufio.NewReader(w.ctrl))
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			select {
			case <-w.done:
			default:
				w.cfg.Logf("worker %s: control connection lost: %v", w.cfg.Name, err)
			}
			return
		}
		switch m.Type {
		case msgStart:
			go w.runSession(m)
		case msgListChk:
			w.handleListChk(m)
		case msgFetchChk:
			w.handleFetchChk(m)
		case msgInstallChk:
			w.handleInstallChk(m)
		case msgEnd:
			w.mu.Lock()
			delete(w.sessions, m.Session)
			w.mu.Unlock()
		default:
			w.cfg.Logf("worker %s: unknown control message %q", w.cfg.Name, m.Type)
		}
	}
}

// session returns the retained state for a session, creating it on
// first use.
func (w *Worker) session(id string) *workerSession {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.sessions[id]
	if !ok {
		s = &workerSession{fs: dfs.New(0)}
		w.sessions[id] = s
	}
	return s
}

// runSession executes one session attempt and reports the result.
func (w *Worker) runSession(m message) {
	res, err := w.executeAttempt(m)
	out := message{Type: msgResult, Session: m.Session, Attempt: m.Attempt}
	if err != nil {
		out.Error = err.Error()
		w.cfg.Logf("worker %s: session %s attempt %d failed: %v", w.cfg.Name, m.Session, m.Attempt, err)
	} else {
		out.OK = true
		out.Hash = hashTuples(res.Tuples)
		if stats, merr := json.Marshal(res.Stats); merr == nil {
			out.Stats = stats
		}
		if m.Self == 0 {
			out.Tuples = make([][]int32, len(res.Tuples))
			for i, t := range res.Tuples {
				out.Tuples[i] = t.IDs
			}
		}
		w.cfg.Logf("worker %s: session %s attempt %d done (%d tuples, hash %s)",
			w.cfg.Name, m.Session, m.Attempt, len(res.Tuples), out.Hash[:8])
	}
	if err := w.send(out); err != nil {
		w.cfg.Logf("worker %s: result send failed: %v", w.cfg.Name, err)
	}
}

// executeAttempt runs the spec on this worker's share of the roster.
func (w *Worker) executeAttempt(m message) (*spatial.Result, error) {
	if m.Spec == nil {
		return nil, fmt.Errorf("cluster: start without a spec")
	}
	spec := *m.Spec
	method, err := spatial.ParseMethod(spec.Method)
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(spec.Query)
	if err != nil {
		return nil, err
	}
	scheme, err := spatial.ParsePartitionScheme(spec.Scheme)
	if err != nil {
		return nil, err
	}
	rels := make([]spatial.Relation, len(spec.Relations))
	for i, rd := range spec.Relations {
		if rels[i], err = UnpackRelation(rd); err != nil {
			return nil, err
		}
	}

	s := w.session(m.Session)
	cfg := spatial.Config{
		Scheme:         scheme,
		Reducers:       spec.Reducers,
		SplitThreshold: spec.SplitThreshold,
		NumMappers:     spec.NumMappers,
		Parallelism:    spec.Parallelism,
		OptimizeOrder:  spec.OptimizeOrder,
		NoCombiner:     spec.NoCombiner,
		Columnar:       spec.Columnar,
		SpillBudget:    spec.SpillBudget,
		Resume:         spec.Resume,
		FS:             s.fs,
	}
	if len(m.Roster) > 1 {
		mh, err := dialMesh(m.Self, m.Roster, m.Session, m.Attempt, w.reg, w.cfg.ExchangeTimeout)
		if err != nil {
			return nil, err
		}
		mh.dieAfter = w.cfg.DieAfterExchanges
		switch {
		case w.cfg.OnDie != nil:
			mh.onDie = w.cfg.OnDie
		case w.cfg.DieInProcess:
			mh.onDie = w.Kill
		default:
			mh.onDie = func() { syscall.Kill(syscall.Getpid(), syscall.SIGKILL) }
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			mh.close()
			return nil, fmt.Errorf("cluster: worker closed")
		}
		s.meshes = append(s.meshes, mh)
		w.mu.Unlock()
		defer mh.close()
		cfg.Dist = &mapreduce.DistConfig{NumWorkers: len(m.Roster), Self: m.Self, Exchanger: mh}
	} else {
		cfg.Dist = &mapreduce.DistConfig{NumWorkers: 1, Self: 0}
	}
	return spatial.Execute(method, q, rels, cfg)
}

// checkpointPrefix scopes the files the coordinator synchronises
// between attempts: the chain checkpoints (mapreduce.ChainConfig
// defaults "chk/<chain>/...").
const checkpointPrefix = "chk/"

func (w *Worker) handleListChk(m message) {
	s := w.session(m.Session)
	var files []string
	for _, name := range s.fs.List() {
		if strings.HasPrefix(name, checkpointPrefix) {
			files = append(files, name)
		}
	}
	w.send(message{Type: msgChkList, Session: m.Session, Files: files})
}

func (w *Worker) handleFetchChk(m message) {
	s := w.session(m.Session)
	var records [][]byte
	err := s.fs.Scan(m.File, func(rec []byte) error {
		records = append(records, append([]byte(nil), rec...))
		return nil
	})
	out := message{Type: msgChkData, Session: m.Session, File: m.File, Records: records}
	if err != nil {
		out.Error = err.Error()
	}
	w.send(out)
}

func (w *Worker) handleInstallChk(m message) {
	s := w.session(m.Session)
	out := message{Type: msgChkOK, Session: m.Session, File: m.File}
	if err := s.fs.WriteFile(m.File, m.Records); err != nil {
		out.Error = err.Error()
	}
	w.send(out)
}

// hashTuples renders the canonical sha-256 of a tuple set; the
// coordinator compares it across the roster — the cheap distributed
// bit-identity check that guards every clustered run, not only the
// ones a test happens to cover.
func hashTuples(tuples []spatial.Tuple) string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	for _, t := range tuples {
		n := binary.PutUvarint(buf[:], uint64(len(t.IDs)))
		h.Write(buf[:n])
		h.Write([]byte(t.Key()))
	}
	return hex.EncodeToString(h.Sum(nil))
}
