package cluster

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"time"

	"mwsjoin/internal/dfs"
	"mwsjoin/internal/geom"
	"mwsjoin/internal/metrics"
	"mwsjoin/internal/query"
	"mwsjoin/internal/spatial"
)

// testCluster is a coordinator plus n in-process workers on loopback
// TCP — the full wire protocol, without separate processes.
type testCluster struct {
	coord   *Coordinator
	workers []*Worker
}

func startTestCluster(t *testing.T, n int, mut func(i int, wc *WorkerConfig)) *testCluster {
	t.Helper()
	coord, err := StartCoordinator(CoordinatorConfig{
		HeartbeatTimeout: 500 * time.Millisecond,
		SessionTimeout:   time.Minute,
		Metrics:          metrics.NewRegistry(),
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{coord: coord}
	t.Cleanup(func() {
		for _, w := range tc.workers {
			w.Close()
		}
		coord.Close()
	})
	for i := 0; i < n; i++ {
		wc := WorkerConfig{
			Coordinator:       coord.Addr(),
			Name:              []string{"w0", "w1", "w2", "w3", "w4"}[i],
			HeartbeatInterval: 100 * time.Millisecond,
			Logf:              t.Logf,
		}
		if mut != nil {
			mut(i, &wc)
		}
		w, err := StartWorker(wc)
		if err != nil {
			t.Fatal(err)
		}
		tc.workers = append(tc.workers, w)
	}
	if err := coord.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return tc
}

func testRelations(seed uint64, nRel, n int) []spatial.Relation {
	rng := rand.New(rand.NewPCG(seed, 99))
	names := []string{"R1", "R2", "R3", "R4"}
	rels := make([]spatial.Relation, nRel)
	for i := range rels {
		rects := make([]geom.Rect, n)
		for j := range rects {
			rects[j] = geom.Rect{
				X: rng.Float64() * 1000,
				Y: rng.Float64() * 1000,
				L: rng.Float64() * 60,
				B: rng.Float64() * 60,
			}
		}
		rels[i] = spatial.NewRelation(names[i], rects)
	}
	return rels
}

// inProcessReference runs the plain single-process engine on the same
// workload a spec describes.
func inProcessReference(t *testing.T, spec SessionSpec) *spatial.Result {
	t.Helper()
	method, err := spatial.ParseMethod(spec.Method)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse(spec.Query)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := spatial.ParsePartitionScheme(spec.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	rels := make([]spatial.Relation, len(spec.Relations))
	for i, rd := range spec.Relations {
		if rels[i], err = UnpackRelation(rd); err != nil {
			t.Fatal(err)
		}
	}
	res, err := spatial.Execute(method, q, rels, spatial.Config{
		Scheme:         scheme,
		Reducers:       spec.Reducers,
		SplitThreshold: spec.SplitThreshold,
		NumMappers:     spec.NumMappers,
		Parallelism:    spec.Parallelism,
		OptimizeOrder:  spec.OptimizeOrder,
		NoCombiner:     spec.NoCombiner,
		Columnar:       spec.Columnar,
		SpillBudget:    spec.SpillBudget,
		FS:             dfs.New(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testSpec(method string) SessionSpec {
	rels := testRelations(2013, 3, 100)
	return SpecFromConfig(
		mustMethod(method),
		"R1 ov R2 and R2 ra(40) R3",
		rels,
		spatial.Config{Reducers: 16, NumMappers: 6, Parallelism: 3},
	)
}

func mustMethod(s string) spatial.Method {
	m, err := spatial.ParseMethod(s)
	if err != nil {
		panic(err)
	}
	return m
}

// TestClusterEquivalence runs every map-reduce method on a 3-worker
// loopback cluster and on a single-worker cluster, asserting tuple
// sets bit-identical to the in-process engine and network bytes
// accounted in the ShuffleNetwork family only for the real fan-out.
func TestClusterEquivalence(t *testing.T) {
	for _, n := range []int{1, 3} {
		tc := startTestCluster(t, n, nil)
		for _, method := range []string{"2-way-cascade", "all-replicate", "c-rep", "c-rep-l"} {
			spec := testSpec(method)
			want := inProcessReference(t, spec)
			got, err := tc.coord.Run(spec)
			if err != nil {
				t.Fatalf("N=%d %s: %v", n, method, err)
			}
			if got.Workers != n || got.Attempts != 1 {
				t.Errorf("N=%d %s: ran on %d workers in %d attempts", n, method, got.Workers, got.Attempts)
			}
			if !reflect.DeepEqual(got.Tuples, want.Tuples) {
				t.Errorf("N=%d %s: cluster tuples diverge from in-process (%d vs %d)", n, method, len(got.Tuples), len(want.Tuples))
			}
			if got.Stats.OutputTuples != want.Stats.OutputTuples {
				t.Errorf("N=%d %s: OutputTuples %d vs %d", n, method, got.Stats.OutputTuples, want.Stats.OutputTuples)
			}
			if got.Stats.DFS != want.Stats.DFS {
				t.Errorf("N=%d %s: DFS charges diverge:\n got %+v\nwant %+v", n, method, got.Stats.DFS, want.Stats.DFS)
			}
			var net int64
			for _, r := range got.Stats.Rounds {
				net += r.ShuffleNetworkBytes
			}
			if n == 1 && net != 0 {
				t.Errorf("N=1 %s: ShuffleNetworkBytes = %d on the degenerate case", method, net)
			}
			if n == 3 && net == 0 {
				t.Errorf("N=3 %s: no network shuffle bytes recorded", method)
			}
		}
	}
}

// TestClusterRecovery SIGKILL-equivalently kills one worker mid-round
// (after the first cascade step committed its checkpoint) and asserts
// the coordinator retries on the survivors with bit-identical tuples.
func TestClusterRecovery(t *testing.T) {
	victim := 2
	tc := startTestCluster(t, 3, func(i int, wc *WorkerConfig) {
		if i == victim {
			// A 3-relation cascade is two jobs of three exchanges each;
			// dying on the fourth is mid round two, after the step-one
			// checkpoint committed.
			wc.DieAfterExchanges = 4
			wc.DieInProcess = true
		}
	})

	spec := testSpec("2-way-cascade")
	want := inProcessReference(t, spec)
	got, err := tc.coord.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attempts != 2 {
		t.Errorf("recovered run took %d attempts, want 2", got.Attempts)
	}
	if got.Workers != 2 {
		t.Errorf("recovered run finished on %d workers, want 2", got.Workers)
	}
	if !reflect.DeepEqual(got.Tuples, want.Tuples) {
		t.Errorf("recovered tuples diverge from in-process (%d vs %d)", len(got.Tuples), len(want.Tuples))
	}

	ws := tc.coord.Workers()
	var dead int
	for _, s := range ws {
		if !s.Alive {
			dead++
		}
	}
	if dead != 1 {
		t.Errorf("worker status reports %d dead workers, want 1", dead)
	}

	// The cluster keeps serving on the survivors.
	again, err := tc.coord.Run(testSpec("c-rep"))
	if err != nil {
		t.Fatal(err)
	}
	if again.Workers != 2 || again.Attempts != 1 {
		t.Errorf("post-recovery run: %d workers, %d attempts", again.Workers, again.Attempts)
	}
}

// TestClusterRecoveryAllMethods kills a worker mid-round under every
// method (first-job exchanges, so also the single-round methods) and
// checks tuple identity after recovery.
func TestClusterRecoveryAllMethods(t *testing.T) {
	for _, method := range []string{"all-replicate", "c-rep", "c-rep-l"} {
		t.Run(method, func(t *testing.T) {
			victim := 1
			tc := startTestCluster(t, 3, func(i int, wc *WorkerConfig) {
				if i == victim {
					wc.DieAfterExchanges = 2 // mid shuffle of the first job
					wc.DieInProcess = true
				}
			})
			spec := testSpec(method)
			want := inProcessReference(t, spec)
			got, err := tc.coord.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if got.Attempts != 2 {
				t.Errorf("%s: recovered run took %d attempts, want 2", method, got.Attempts)
			}
			if !reflect.DeepEqual(got.Tuples, want.Tuples) {
				t.Errorf("%s: recovered tuples diverge", method)
			}
		})
	}
}

func TestClusterWorkerStatusAndGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	coord, err := StartCoordinator(CoordinatorConfig{
		HeartbeatTimeout: 500 * time.Millisecond,
		Metrics:          reg,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	w, err := StartWorker(WorkerConfig{Coordinator: coord.Addr(), Name: "w0", HeartbeatInterval: 50 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := coord.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	ws := coord.Workers()
	if len(ws) != 1 || !ws[0].Alive || ws[0].Name != "w0" || ws[0].DataAddr != w.DataAddr() {
		t.Fatalf("worker status: %+v", ws)
	}
	if got := reg.Gauge("server_workers_alive").Value(); got != 1 {
		t.Errorf("server_workers_alive = %d, want 1", got)
	}

	// A duplicate name is rejected outright.
	if _, err := StartWorker(WorkerConfig{Coordinator: coord.Addr(), Name: "w0", Logf: t.Logf}); err == nil {
		// Registration is async on the coordinator side: the dial
		// succeeds, then the connection is dropped. Verify no second
		// member ever turns alive.
		time.Sleep(200 * time.Millisecond)
		alive := 0
		for _, s := range coord.Workers() {
			if s.Alive {
				alive++
			}
		}
		if alive != 1 {
			t.Errorf("duplicate registration produced %d alive workers", alive)
		}
	}

	// Death by silence: kill the worker, the heartbeat monitor reaps it.
	w.Kill()
	deadlineOK := false
	for i := 0; i < 100; i++ {
		if ws := coord.Workers(); len(ws) >= 1 && !ws[0].Alive {
			deadlineOK = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !deadlineOK {
		t.Fatal("killed worker never marked dead")
	}
	if got := reg.Gauge("server_workers_alive").Value(); got != 0 {
		t.Errorf("server_workers_alive = %d after death, want 0", got)
	}
	if got := reg.Gauge("server_workers_dead").Value(); got == 0 {
		t.Errorf("server_workers_dead = %d after death, want > 0", got)
	}

	// No alive workers: a run fails fast.
	if _, err := coord.Run(testSpec("c-rep")); err == nil || !strings.Contains(err.Error(), "no alive workers") {
		t.Errorf("run with dead cluster: err = %v", err)
	}
}

func TestRelationPackRoundTrip(t *testing.T) {
	rels := testRelations(7, 2, 50)
	for _, rel := range rels {
		got, err := UnpackRelation(PackRelation(rel))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rel) {
			t.Fatalf("relation %s did not round-trip", rel.Name)
		}
	}
	if _, err := UnpackRelation(RelationData{Name: "x", Items: make([]byte, 5)}); err == nil {
		t.Error("truncated relation unpacked without error")
	}
}
