// Package cluster turns the in-process map-reduce engine into a real
// coordinator/worker runtime: N worker processes execute every job of a
// query in SPMD lockstep — each worker owns its share of map and reduce
// tasks and ships EncodePair-framed sorted runs destined for remote
// reducers over persistent loopback/LAN connections (the network
// shuffle) — while a coordinator owns worker membership, heartbeats,
// session placement, and recovery.
//
// The design is deliberately symmetric: every worker runs the same
// deterministic spatial.Execute over the same staged inputs, so the
// only bytes that must cross the wire are the shuffle runs (data
// plane, see mesh.go) and the small control messages (this file).
// Every worker therefore finishes each session holding the complete,
// bit-identical result — the single-worker case degenerates to the
// unmodified in-process engine, and any existing equivalence battery
// doubles as a distributed-correctness oracle. Cross-worker agreement
// is enforced with a result hash (sha-256 over the canonical tuple
// keys) that the coordinator compares across the roster.
//
// Recovery: the coordinator detects worker death via heartbeats and
// dead control connections. Survivors of a failed attempt fail fast
// (their mesh exchanges error out), keep their per-session DFS — the
// staged inputs and every chain checkpoint committed before the crash
// — and re-run the session with Resume set after the coordinator has
// synchronised checkpoints across the surviving roster (a straggler
// that crashed mid-job may hold fewer checkpoints than its peers; the
// chain prefix must agree before a resumed run can proceed in
// lockstep).
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"mwsjoin/internal/geom"
	"mwsjoin/internal/spatial"
)

// Control-plane message types. The control plane is JSON lines over
// one TCP connection per worker; the worker opens it at registration
// and both sides write whole messages under a per-connection mutex.
const (
	// worker → coordinator
	msgRegister  = "register"  // Name, DataAddr
	msgHeartbeat = "heartbeat" //
	msgResult    = "result"    // Session, Attempt, OK, Error, Hash, Stats, Tuples (self 0)
	msgChkList   = "chk_list"  // Session, Files
	msgChkData   = "chk_data"  // Session, File, Records
	msgChkOK     = "chk_ok"    // Session
	// coordinator → worker
	msgStart      = "start"       // Session, Attempt, Self, Roster, Spec
	msgListChk    = "list_chk"    // Session
	msgFetchChk   = "fetch_chk"   // Session, File
	msgInstallChk = "install_chk" // Session, File, Records
	msgEnd        = "end"         // Session — release session state
)

// message is the single wire envelope of the control plane; Type
// selects which fields are meaningful (see the constants above).
type message struct {
	Type     string `json:"type"`
	Name     string `json:"name,omitempty"`
	DataAddr string `json:"data_addr,omitempty"`

	Session string       `json:"session,omitempty"`
	Attempt int          `json:"attempt,omitempty"`
	Self    int          `json:"self,omitempty"`
	Roster  []string     `json:"roster,omitempty"`
	Spec    *SessionSpec `json:"spec,omitempty"`

	OK     bool      `json:"ok,omitempty"`
	Error  string    `json:"error,omitempty"`
	Hash   string    `json:"hash,omitempty"`
	Stats  []byte    `json:"stats,omitempty"`
	Tuples [][]int32 `json:"tuples,omitempty"`

	Files   []string `json:"files,omitempty"`
	File    string   `json:"file,omitempty"`
	Records [][]byte `json:"records,omitempty"`
}

// SessionSpec is everything a worker needs to run one query session:
// the query, the relations (shipped raw so every worker stages the
// identical inputs and is charged the identical DFS bytes), and the
// engine knobs that must agree across the roster for the SPMD runs to
// stay in lockstep. NumMappers is always explicit — the in-process
// GOMAXPROCS default would differ across heterogeneous workers.
type SessionSpec struct {
	Method         string         `json:"method"`
	Query          string         `json:"query"`
	Relations      []RelationData `json:"relations"`
	Scheme         string         `json:"scheme,omitempty"`
	Reducers       int            `json:"reducers,omitempty"`
	SplitThreshold float64        `json:"split_threshold,omitempty"`
	NumMappers     int            `json:"num_mappers"`
	Parallelism    int            `json:"parallelism,omitempty"`
	OptimizeOrder  bool           `json:"optimize_order,omitempty"`
	NoCombiner     bool           `json:"no_combiner,omitempty"`
	Columnar       bool           `json:"columnar,omitempty"`
	SpillBudget    int64          `json:"spill_budget,omitempty"`
	// Resume is set by the coordinator on retry attempts: the worker
	// re-runs the session against its retained per-session DFS, so
	// checkpointed chain steps committed before the failure are not
	// re-executed.
	Resume bool `json:"resume,omitempty"`
}

// RelationData is one relation of a spec, packed as 36-byte binary
// items (id + rect) so relation shipping does not balloon the JSON
// control plane.
type RelationData struct {
	Name  string `json:"name"`
	Items []byte `json:"items"`
}

// itemBytes is the packed size of one relation item: id(4) + 4 float64
// rect fields.
const itemBytes = 4 + 32

// PackRelation renders a relation for a SessionSpec.
func PackRelation(rel spatial.Relation) RelationData {
	buf := make([]byte, len(rel.Items)*itemBytes)
	off := 0
	for _, it := range rel.Items {
		binary.LittleEndian.PutUint32(buf[off:], uint32(it.ID))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(it.R.X))
		binary.LittleEndian.PutUint64(buf[off+12:], math.Float64bits(it.R.Y))
		binary.LittleEndian.PutUint64(buf[off+20:], math.Float64bits(it.R.L))
		binary.LittleEndian.PutUint64(buf[off+28:], math.Float64bits(it.R.B))
		off += itemBytes
	}
	return RelationData{Name: rel.Name, Items: buf}
}

// UnpackRelation parses a RelationData back into a relation.
func UnpackRelation(rd RelationData) (spatial.Relation, error) {
	if len(rd.Items)%itemBytes != 0 {
		return spatial.Relation{}, fmt.Errorf("cluster: relation %q has %d item bytes, not a multiple of %d", rd.Name, len(rd.Items), itemBytes)
	}
	n := len(rd.Items) / itemBytes
	items := make([]spatial.Item, n)
	for i := 0; i < n; i++ {
		off := i * itemBytes
		items[i] = spatial.Item{
			ID: int32(binary.LittleEndian.Uint32(rd.Items[off:])),
			R: geom.Rect{
				X: math.Float64frombits(binary.LittleEndian.Uint64(rd.Items[off+4:])),
				Y: math.Float64frombits(binary.LittleEndian.Uint64(rd.Items[off+12:])),
				L: math.Float64frombits(binary.LittleEndian.Uint64(rd.Items[off+20:])),
				B: math.Float64frombits(binary.LittleEndian.Uint64(rd.Items[off+28:])),
			},
		}
	}
	return spatial.Relation{Name: rd.Name, Items: items}, nil
}

// SpecFromConfig assembles a SessionSpec from a query, relations and
// the subset of spatial.Config knobs a cluster run honours.
func SpecFromConfig(method spatial.Method, queryText string, rels []spatial.Relation, cfg spatial.Config) SessionSpec {
	spec := SessionSpec{
		Method:         method.String(),
		Query:          queryText,
		Scheme:         cfg.Scheme.String(),
		Reducers:       cfg.Reducers,
		SplitThreshold: cfg.SplitThreshold,
		NumMappers:     cfg.NumMappers,
		Parallelism:    cfg.Parallelism,
		OptimizeOrder:  cfg.OptimizeOrder,
		NoCombiner:     cfg.NoCombiner,
		Columnar:       cfg.Columnar,
		SpillBudget:    cfg.SpillBudget,
	}
	for _, rel := range rels {
		spec.Relations = append(spec.Relations, PackRelation(rel))
	}
	return spec
}
