package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The data plane: each pair of workers in a session's roster shares one
// persistent TCP connection carrying sequence-numbered frames. Every
// engine exchange (mapreduce.Exchanger.AllToAll) happens in the same
// order on every worker, so frame seq N from peer p is exactly the
// payload of the worker's own N-th AllToAll call — the receiver
// rendezvouses on the sequence number, never on timing, and a peer
// racing one exchange ahead parks its frame in the pending map until
// the local engine catches up.

// meshMagic prefixes the hello line of every data connection.
const meshMagic = "MWSJ-MESH1 "

// meshHello identifies a dialed data connection to the acceptor.
type meshHello struct {
	Session string `json:"session"`
	Attempt int    `json:"attempt"`
	From    int    `json:"from"`
}

// defaultExchangeTimeout bounds one AllToAll rendezvous; it is a
// backstop — a killed peer resets its connections and surfaces as a
// read error long before this fires.
const defaultExchangeTimeout = 60 * time.Second

// meshConn is one peer connection: writes serialized by a mutex, reads
// demuxed by a single reader goroutine into the seq-keyed pending map.
type meshConn struct {
	c  net.Conn
	wg sync.WaitGroup

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64][]byte
	err     error
	notify  chan struct{} // cap 1: kicked after every delivery
}

func newMeshConn(c net.Conn) *meshConn {
	mc := &meshConn{c: c, pending: make(map[uint64][]byte), notify: make(chan struct{}, 1)}
	mc.wg.Add(1)
	go mc.readLoop()
	return mc
}

// readLoop pulls frames off the wire until the connection dies.
func (mc *meshConn) readLoop() {
	defer mc.wg.Done()
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(mc.c, hdr[:]); err != nil {
			mc.fail(err)
			return
		}
		seq := binary.LittleEndian.Uint64(hdr[:8])
		n := binary.LittleEndian.Uint32(hdr[8:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(mc.c, payload); err != nil {
			mc.fail(err)
			return
		}
		mc.mu.Lock()
		mc.pending[seq] = payload
		mc.mu.Unlock()
		mc.kick()
	}
}

func (mc *meshConn) fail(err error) {
	mc.mu.Lock()
	if mc.err == nil {
		mc.err = err
	}
	mc.mu.Unlock()
	mc.kick()
}

func (mc *meshConn) kick() {
	select {
	case mc.notify <- struct{}{}:
	default:
	}
}

// send writes one frame; safe for concurrent use.
func (mc *meshConn) send(seq uint64, payload []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	mc.wmu.Lock()
	defer mc.wmu.Unlock()
	if _, err := mc.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := mc.c.Write(payload)
	return err
}

// await blocks until frame seq arrives, the connection fails, or the
// deadline passes.
func (mc *meshConn) await(seq uint64, timeout time.Duration) ([]byte, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		mc.mu.Lock()
		if p, ok := mc.pending[seq]; ok {
			delete(mc.pending, seq)
			mc.mu.Unlock()
			return p, nil
		}
		err := mc.err
		mc.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("cluster: mesh peer lost: %w", err)
		}
		select {
		case <-mc.notify:
		case <-deadline.C:
			return nil, fmt.Errorf("cluster: mesh exchange timed out after %v waiting for frame %d", timeout, seq)
		}
	}
}

func (mc *meshConn) close() {
	mc.c.Close()
	mc.wg.Wait()
}

// mesh implements mapreduce.Exchanger over one connection per peer.
type mesh struct {
	self    int
	conns   []*meshConn // indexed by peer; nil at self
	seq     uint64
	timeout time.Duration

	// exchanges counts completed AllToAll entries; when dieAfter is
	// positive and the counter reaches it, onDie fires before the
	// exchange proceeds — the deterministic mid-round kill hook the
	// recovery tests and the check.sh SIGKILL stanza are built on.
	exchanges int
	dieAfter  int
	onDie     func()
}

// dialMesh connects this worker to the session roster: the lower
// session index dials the higher, the higher accepts through reg.
func dialMesh(self int, roster []string, session string, attempt int, reg *meshRegistry, timeout time.Duration) (*mesh, error) {
	if timeout <= 0 {
		timeout = defaultExchangeTimeout
	}
	m := &mesh{self: self, conns: make([]*meshConn, len(roster)), timeout: timeout}
	for p := range roster {
		var c net.Conn
		var err error
		switch {
		case p == self:
			continue
		case self < p:
			c, err = dialPeer(roster[p], session, attempt, self, timeout)
		default:
			c, err = reg.accept(session, attempt, p, timeout)
		}
		if err != nil {
			m.close()
			return nil, fmt.Errorf("cluster: mesh setup with peer %d: %w", p, err)
		}
		m.conns[p] = newMeshConn(c)
	}
	return m, nil
}

func dialPeer(addr, session string, attempt, from int, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	hello, err := json.Marshal(meshHello{Session: session, Attempt: attempt, From: from})
	if err != nil {
		c.Close()
		return nil, err
	}
	if _, err := fmt.Fprintf(c, "%s%s\n", meshMagic, hello); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// AllToAll implements mapreduce.Exchanger: outgoing[p] goes to peer p,
// the returned slice holds what every peer addressed to this worker on
// its own matching call.
func (m *mesh) AllToAll(tag string, outgoing [][]byte) ([][]byte, error) {
	if len(outgoing) != len(m.conns) {
		return nil, fmt.Errorf("cluster: AllToAll %s: %d payloads for a %d-worker mesh", tag, len(outgoing), len(m.conns))
	}
	m.exchanges++
	if m.dieAfter > 0 && m.exchanges >= m.dieAfter && m.onDie != nil {
		m.onDie()
	}
	seq := m.seq
	m.seq++

	// Writes go out concurrently so a large fan-out cannot deadlock
	// against peers that are also mid-write: every conn's reads drain in
	// its reader goroutine regardless of write progress.
	var wg sync.WaitGroup
	sendErrs := make([]error, len(m.conns))
	for p, mc := range m.conns {
		if mc == nil {
			continue
		}
		wg.Add(1)
		go func(p int, mc *meshConn) {
			defer wg.Done()
			sendErrs[p] = mc.send(seq, outgoing[p])
		}(p, mc)
	}
	wg.Wait()
	for p, err := range sendErrs {
		if err != nil {
			return nil, fmt.Errorf("cluster: AllToAll %s: send to peer %d: %w", tag, p, err)
		}
	}

	in := make([][]byte, len(m.conns))
	in[m.self] = outgoing[m.self]
	for p, mc := range m.conns {
		if mc == nil {
			continue
		}
		payload, err := mc.await(seq, m.timeout)
		if err != nil {
			return nil, fmt.Errorf("cluster: AllToAll %s: receive from peer %d: %w", tag, p, err)
		}
		in[p] = payload
	}
	return in, nil
}

func (m *mesh) close() {
	for _, mc := range m.conns {
		if mc != nil {
			mc.close()
		}
	}
}

// meshRegistry rendezvouses accepted data connections with the session
// that awaits them: the worker's data listener reads each hello and
// offers the connection here; dialMesh on the accepting side collects
// it by (session, attempt, from) key.
type meshRegistry struct {
	mu      sync.Mutex
	waiting map[string]chan net.Conn
}

func newMeshRegistry() *meshRegistry {
	return &meshRegistry{waiting: make(map[string]chan net.Conn)}
}

func meshKey(session string, attempt, from int) string {
	return fmt.Sprintf("%s/%d/%d", session, attempt, from)
}

func (r *meshRegistry) slot(key string) chan net.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch, ok := r.waiting[key]
	if !ok {
		ch = make(chan net.Conn, 1)
		r.waiting[key] = ch
	}
	return ch
}

// offer hands an accepted connection to the awaiting session, closing
// it if nobody collects in time (e.g. a stale attempt).
func (r *meshRegistry) offer(session string, attempt, from int, c net.Conn) {
	ch := r.slot(meshKey(session, attempt, from))
	select {
	case ch <- c:
	default:
		c.Close()
	}
}

// accept collects the connection dialed by the given lower-index peer.
func (r *meshRegistry) accept(session string, attempt, from int, timeout time.Duration) (net.Conn, error) {
	key := meshKey(session, attempt, from)
	ch := r.slot(key)
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	defer func() {
		r.mu.Lock()
		delete(r.waiting, key)
		r.mu.Unlock()
	}()
	select {
	case c := <-ch:
		return c, nil
	case <-deadline.C:
		return nil, fmt.Errorf("cluster: no data connection from peer %d within %v", from, timeout)
	}
}

// serveData runs a worker's data listener: it reads each inbound hello
// line and routes the connection to the session awaiting it.
func serveData(ln net.Listener, reg *meshRegistry) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			hello, err := readHello(c)
			if err != nil {
				c.Close()
				return
			}
			reg.offer(hello.Session, hello.Attempt, hello.From, c)
		}(c)
	}
}

// readHello parses the magic-prefixed hello line off a fresh data
// connection, reading byte-wise so no framed payload is swallowed.
func readHello(c net.Conn) (meshHello, error) {
	c.SetReadDeadline(time.Now().Add(defaultExchangeTimeout))
	defer c.SetReadDeadline(time.Time{})
	line := make([]byte, 0, 128)
	var b [1]byte
	for {
		if _, err := c.Read(b[:]); err != nil {
			return meshHello{}, err
		}
		if b[0] == '\n' {
			break
		}
		if len(line) > 4096 {
			return meshHello{}, fmt.Errorf("cluster: oversized mesh hello")
		}
		line = append(line, b[0])
	}
	if len(line) < len(meshMagic) || string(line[:len(meshMagic)]) != meshMagic {
		return meshHello{}, fmt.Errorf("cluster: bad mesh hello magic")
	}
	var hello meshHello
	if err := json.Unmarshal(line[len(meshMagic):], &hello); err != nil {
		return meshHello{}, fmt.Errorf("cluster: bad mesh hello: %w", err)
	}
	return hello, nil
}
