package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"mwsjoin/internal/metrics"
	"mwsjoin/internal/spatial"
)

// CoordinatorConfig configures the cluster coordinator.
type CoordinatorConfig struct {
	// Listen is the control-plane listen address (default
	// "127.0.0.1:0").
	Listen string
	// HeartbeatTimeout is how stale a worker's heartbeat may grow
	// before the coordinator declares it dead and drops its connection
	// (default 2s).
	HeartbeatTimeout time.Duration
	// SessionTimeout bounds one session attempt end to end (default
	// 10min).
	SessionTimeout time.Duration
	// MaxAttempts bounds the run/recover cycle per session (default 3:
	// the initial attempt plus two recoveries).
	MaxAttempts int
	// Metrics receives the server_workers_* gauges. May be nil.
	Metrics *metrics.Registry
	// Logf receives coordinator lifecycle logs. May be nil.
	Logf func(format string, args ...any)
}

// WorkerStatus is one worker's row in the observability surface
// (GET /v1/workers and the status workers section).
type WorkerStatus struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	DataAddr string `json:"data_addr"`
	Alive    bool   `json:"alive"`
	// InFlight counts the session attempts currently placed on the
	// worker.
	InFlight int `json:"in_flight"`
	// LastHeartbeatMillis is the age of the last heartbeat (or any
	// control message) from the worker.
	LastHeartbeatMillis int64 `json:"last_heartbeat_ms"`
	// Sessions counts the session attempts the worker has completed.
	Sessions int64 `json:"sessions"`
}

// RunResult is one completed cluster query.
type RunResult struct {
	Tuples []spatial.Tuple
	// Stats is worker 0's view of the run; under SPMD every worker
	// reports identical totals (walls aside), so one view is the
	// cluster's.
	Stats spatial.Stats
	// Workers is the roster size of the final (successful) attempt.
	Workers int
	// Attempts counts the attempts the session took; > 1 means the
	// coordinator recovered from worker loss.
	Attempts int
	// Hash is the canonical tuple-set hash every roster member agreed
	// on.
	Hash string
}

// member is the coordinator's view of one registered worker.
type member struct {
	name     string
	addr     string
	dataAddr string
	conn     net.Conn
	enc      *json.Encoder
	encMu    sync.Mutex

	mu       sync.Mutex
	lastBeat time.Time
	alive    bool
	inFlight int
	sessions int64
	// inbox receives result/chk messages routed by the member's reader
	// goroutine; dead closes when the connection drops.
	inbox chan message
	dead  chan struct{}
}

func (m *member) send(msg message) error {
	m.encMu.Lock()
	defer m.encMu.Unlock()
	return m.enc.Encode(msg)
}

// Coordinator owns cluster membership and runs query sessions across
// the registered workers.
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	mu      sync.Mutex
	members []*member
	nextSes int

	// runMu serializes sessions: one distributed query runs at a time
	// (the SPMD lockstep would interleave exchanges of concurrent
	// sessions safely — they key on session ids — but placement and
	// recovery bookkeeping stay much simpler serialized).
	runMu sync.Mutex

	done chan struct{}
	wg   sync.WaitGroup
}

// StartCoordinator opens the control listener and starts accepting
// worker registrations.
func StartCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = 10 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	c := &Coordinator{cfg: cfg, ln: ln, done: make(chan struct{})}
	c.wg.Add(2)
	go func() { defer c.wg.Done(); c.acceptLoop() }()
	go func() { defer c.wg.Done(); c.livenessLoop() }()
	c.cfg.Logf("coordinator: control plane on %s", ln.Addr())
	return c, nil
}

// Addr returns the coordinator's control address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close shuts the coordinator down and drops every worker connection.
func (c *Coordinator) Close() error {
	select {
	case <-c.done:
		return nil
	default:
	}
	close(c.done)
	c.ln.Close()
	c.mu.Lock()
	for _, m := range c.members {
		m.conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return nil
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() { defer c.wg.Done(); c.serveWorker(conn) }()
	}
}

// serveWorker owns one worker's control connection: it requires a
// register message first, then routes heartbeats into liveness and
// everything else into the member's inbox.
func (c *Coordinator) serveWorker(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	var hello message
	conn.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
	if err := dec.Decode(&hello); err != nil || hello.Type != msgRegister || hello.Name == "" {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	m := &member{
		name:     hello.Name,
		addr:     conn.RemoteAddr().String(),
		dataAddr: hello.DataAddr,
		conn:     conn,
		enc:      json.NewEncoder(conn),
		lastBeat: time.Now(),
		alive:    true,
		inbox:    make(chan message, 16),
		dead:     make(chan struct{}),
	}
	c.mu.Lock()
	for _, other := range c.members {
		other.mu.Lock()
		dup := other.alive && other.name == m.name
		other.mu.Unlock()
		if dup {
			c.mu.Unlock()
			c.cfg.Logf("coordinator: rejecting duplicate worker name %q", m.name)
			conn.Close()
			return
		}
	}
	c.members = append(c.members, m)
	c.mu.Unlock()
	c.publishGauges()
	c.cfg.Logf("coordinator: worker %s registered (data %s)", m.name, m.dataAddr)

	for {
		var msg message
		if err := dec.Decode(&msg); err != nil {
			break
		}
		m.mu.Lock()
		m.lastBeat = time.Now()
		m.mu.Unlock()
		if msg.Type == msgHeartbeat {
			continue
		}
		select {
		case m.inbox <- msg:
		case <-c.done:
			break
		}
	}
	m.mu.Lock()
	m.alive = false
	m.mu.Unlock()
	close(m.dead)
	conn.Close()
	c.publishGauges()
	c.cfg.Logf("coordinator: worker %s lost", m.name)
}

// livenessLoop enforces the heartbeat timeout: a silent worker's
// connection is dropped, which drives its reader loop to mark it dead.
func (c *Coordinator) livenessLoop() {
	t := time.NewTicker(c.cfg.HeartbeatTimeout / 4)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			now := time.Now()
			c.mu.Lock()
			for _, m := range c.members {
				m.mu.Lock()
				stale := m.alive && now.Sub(m.lastBeat) > c.cfg.HeartbeatTimeout
				m.mu.Unlock()
				if stale {
					c.cfg.Logf("coordinator: worker %s heartbeat stale, dropping", m.name)
					m.conn.Close()
				}
			}
			c.mu.Unlock()
		}
	}
}

// Workers reports the observability rows for every worker the
// coordinator has ever seen, registration order.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.members))
	now := time.Now()
	for _, m := range c.members {
		m.mu.Lock()
		out = append(out, WorkerStatus{
			Name:                m.name,
			Addr:                m.addr,
			DataAddr:            m.dataAddr,
			Alive:               m.alive,
			InFlight:            m.inFlight,
			LastHeartbeatMillis: now.Sub(m.lastBeat).Milliseconds(),
			Sessions:            m.sessions,
		})
		m.mu.Unlock()
	}
	return out
}

// publishGauges refreshes the server_workers_* gauges.
func (c *Coordinator) publishGauges() {
	reg := c.cfg.Metrics
	if reg == nil {
		return
	}
	var alive, deadN, inflight int64
	for _, ws := range c.Workers() {
		if ws.Alive {
			alive++
			inflight += int64(ws.InFlight)
		} else {
			deadN++
		}
	}
	reg.Gauge("server_workers_alive").Set(alive)
	reg.Gauge("server_workers_dead").Set(deadN)
	reg.Gauge("server_workers_inflight_tasks").Set(inflight)
}

// WaitForWorkers blocks until at least n workers are alive.
func (c *Coordinator) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if len(c.aliveMembers()) >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %d workers not registered within %v", n, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (c *Coordinator) aliveMembers() []*member {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*member
	for _, m := range c.members {
		m.mu.Lock()
		if m.alive {
			out = append(out, m)
		}
		m.mu.Unlock()
	}
	return out
}

// Run executes one query session across the currently alive workers,
// recovering from worker death by retrying the session on the
// survivors with checkpoints synchronised and Resume set.
func (c *Coordinator) Run(spec SessionSpec) (*RunResult, error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()

	c.mu.Lock()
	c.nextSes++
	session := fmt.Sprintf("s%04d", c.nextSes)
	c.mu.Unlock()

	var roster []*member
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		roster = c.aliveMembers()
		if len(roster) == 0 {
			return nil, fmt.Errorf("cluster: no alive workers")
		}
		spec.Resume = attempt > 0
		res, failure, err := c.runAttempt(session, attempt, &spec, roster)
		if err != nil {
			return nil, err
		}
		if res != nil {
			res.Attempts = attempt + 1
			c.endSession(session, roster)
			return res, nil
		}
		c.cfg.Logf("coordinator: session %s attempt %d failed (%s), recovering", session, attempt, failure)
		if attempt+1 < c.cfg.MaxAttempts {
			if err := c.syncCheckpoints(session, c.aliveMembers()); err != nil {
				return nil, fmt.Errorf("cluster: checkpoint sync after failed attempt: %w", err)
			}
		}
	}
	c.endSession(session, c.aliveMembers())
	return nil, fmt.Errorf("cluster: session %s failed after %d attempts", session, c.cfg.MaxAttempts)
}

// attemptOutcome is one worker's terminal state within an attempt.
type attemptOutcome struct {
	msg  message
	died bool
}

// runAttempt places one attempt on the roster and collects every
// member's outcome. It returns (result, "", nil) on success,
// (nil, reason, nil) when the attempt should be retried, and a hard
// error when the session must be abandoned.
func (c *Coordinator) runAttempt(session string, attempt int, spec *SessionSpec, roster []*member) (*RunResult, string, error) {
	dataAddrs := make([]string, len(roster))
	for i, m := range roster {
		dataAddrs[i] = m.dataAddr
	}
	c.cfg.Logf("coordinator: session %s attempt %d on %d workers", session, attempt, len(roster))
	for i, m := range roster {
		m.mu.Lock()
		m.inFlight++
		m.mu.Unlock()
		err := m.send(message{Type: msgStart, Session: session, Attempt: attempt, Self: i, Roster: dataAddrs, Spec: spec})
		if err != nil {
			m.conn.Close() // send failure == death; reader will mark it
		}
	}
	c.publishGauges()
	defer func() {
		for _, m := range roster {
			m.mu.Lock()
			m.inFlight--
			m.sessions++
			m.mu.Unlock()
		}
		c.publishGauges()
	}()

	outcomes := make([]attemptOutcome, len(roster))
	deadline := time.NewTimer(c.cfg.SessionTimeout)
	defer deadline.Stop()
	for i, m := range roster {
	awaiting:
		for {
			select {
			case msg := <-m.inbox:
				if msg.Type == msgResult && msg.Session == session && msg.Attempt == attempt {
					outcomes[i] = attemptOutcome{msg: msg}
					break awaiting
				}
				// Stale chatter from a previous attempt; drop it.
			case <-m.dead:
				outcomes[i] = attemptOutcome{died: true}
				break awaiting
			case <-deadline.C:
				return nil, "", fmt.Errorf("cluster: session %s attempt %d timed out after %v", session, attempt, c.cfg.SessionTimeout)
			}
		}
	}

	var died, failed int
	var failReason string
	for i, o := range outcomes {
		switch {
		case o.died:
			died++
		case !o.msg.OK:
			failed++
			if failReason == "" {
				failReason = o.msg.Error
			}
			_ = i
		}
	}
	if died > 0 {
		return nil, fmt.Sprintf("%d worker(s) died, %d survivor(s) aborted", died, failed), nil
	}
	if failed > 0 {
		// Nobody died: the failure is the job's own (bad query, engine
		// error) and identical on every worker — retrying cannot help.
		return nil, "", fmt.Errorf("cluster: session %s failed: %s", session, failReason)
	}

	// Success: every roster member must agree on the tuple hash.
	hash := outcomes[0].msg.Hash
	for i, o := range outcomes {
		if o.msg.Hash != hash {
			return nil, "", fmt.Errorf("cluster: session %s: worker %s hash %s disagrees with worker %s hash %s — distributed run is not bit-identical",
				session, roster[i].name, o.msg.Hash, roster[0].name, hash)
		}
	}
	res := &RunResult{Workers: len(roster), Hash: hash}
	if err := json.Unmarshal(outcomes[0].msg.Stats, &res.Stats); err != nil {
		return nil, "", fmt.Errorf("cluster: session %s: bad stats from worker %s: %w", session, roster[0].name, err)
	}
	res.Tuples = make([]spatial.Tuple, len(outcomes[0].msg.Tuples))
	for i, ids := range outcomes[0].msg.Tuples {
		res.Tuples[i] = spatial.Tuple{IDs: ids}
	}
	return res, "", nil
}

// request sends one control message and awaits the reply of the given
// type for the session, tolerating stale inbox chatter.
func (c *Coordinator) request(m *member, out message, wantType string) (message, error) {
	if err := m.send(out); err != nil {
		return message{}, fmt.Errorf("cluster: %s to %s: %w", out.Type, m.name, err)
	}
	deadline := time.NewTimer(c.cfg.HeartbeatTimeout * 5)
	defer deadline.Stop()
	for {
		select {
		case msg := <-m.inbox:
			if msg.Type == wantType && msg.Session == out.Session {
				if msg.Error != "" {
					return message{}, fmt.Errorf("cluster: %s on %s: %s", out.Type, m.name, msg.Error)
				}
				return msg, nil
			}
		case <-m.dead:
			return message{}, fmt.Errorf("cluster: worker %s died during %s", m.name, out.Type)
		case <-deadline.C:
			return message{}, fmt.Errorf("cluster: %s to %s timed out", out.Type, m.name)
		}
	}
}

// syncCheckpoints equalises the session's chain checkpoints across the
// survivors: the union of everyone's files is installed everywhere, so
// the resumed attempt finds the same committed prefix on every worker
// and the SPMD chains stay in lockstep. (A checkpoint file is written
// atomically after its job completes on every worker identically, so
// same-named files hold identical bytes; union by name is safe.)
func (c *Coordinator) syncCheckpoints(session string, survivors []*member) error {
	if len(survivors) < 2 {
		return nil
	}
	lists := make([][]string, len(survivors))
	have := make([]map[string]bool, len(survivors))
	union := map[string]int{} // file -> index of a holder
	for i, m := range survivors {
		reply, err := c.request(m, message{Type: msgListChk, Session: session}, msgChkList)
		if err != nil {
			return err
		}
		lists[i] = reply.Files
		have[i] = make(map[string]bool, len(reply.Files))
		for _, f := range reply.Files {
			have[i][f] = true
			if _, ok := union[f]; !ok {
				union[f] = i
			}
		}
	}
	files := make([]string, 0, len(union))
	for f := range union {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		donor := survivors[union[f]]
		var data message
		fetched := false
		for i, m := range survivors {
			if have[i][f] {
				continue
			}
			if !fetched {
				var err error
				data, err = c.request(donor, message{Type: msgFetchChk, Session: session, File: f}, msgChkData)
				if err != nil {
					return err
				}
				fetched = true
			}
			if _, err := c.request(m, message{Type: msgInstallChk, Session: session, File: f, Records: data.Records}, msgChkOK); err != nil {
				return err
			}
			c.cfg.Logf("coordinator: session %s: installed %s on %s (from %s)", session, f, m.name, donor.name)
		}
	}
	return nil
}

// endSession releases the session state on the given workers.
func (c *Coordinator) endSession(session string, members []*member) {
	for _, m := range members {
		m.send(message{Type: msgEnd, Session: session})
	}
}
