// Package profile assembles per-query execution profiles and closes
// the calibration loop between the EXPLAIN predictor and measured
// reality. The paper's experimental argument is per-phase cost
// attribution — map vs shuffle vs reduce pairs/bytes/time per round
// (§6.4, §7.8.3) — and the flat Stats structs plus the raw span tree
// each hold half of that picture. A Profile joins them: the
// deterministic counters come from spatial.Stats (authoritative,
// bit-identical across parallelism), the per-phase wall times come
// from the tracer's span tree, and Normalize zeroes the wall fields so
// profiles are property-testable (two runs of the same query produce
// byte-identical normalized profiles).
//
// The second half of the package (ledger.go) persists predicted-vs-
// actual phase costs per query and derives per-method/per-phase
// correction factors (spatial.Calibration) from the residuals — the
// feedback ROADMAP's cost-based planner needs. chrome.go exports the
// span tree as Chrome trace-event JSON for chrome://tracing/Perfetto.
package profile

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"mwsjoin/internal/dfs"
	"mwsjoin/internal/mapreduce"
	"mwsjoin/internal/spatial"
	"mwsjoin/internal/trace"
)

// MapPhase is the map side of one round: input, retries and combiner
// effectiveness.
type MapPhase struct {
	WallUS     int64 `json:"wall_us"`
	Records    int64 `json:"records"`
	Attempts   int64 `json:"attempts"`
	Failures   int64 `json:"failures"`
	CombineIn  int64 `json:"combine_in"`
	CombineOut int64 `json:"combine_out"`
	// CombineRatio is CombineOut/CombineIn — the fraction of pairs the
	// combiner kept (1 = no reduction, 0.25 = 4× shuffle saving); 0
	// when the job has no combiner.
	CombineRatio float64 `json:"combine_ratio,omitempty"`
}

// ShufflePhase is the communication side of one round — the paper's
// figure of merit — plus the reducer-balance summary.
type ShufflePhase struct {
	WallUS          int64 `json:"wall_us"`
	Pairs           int64 `json:"pairs"`
	Bytes           int64 `json:"bytes"`
	Reducers        int64 `json:"reducers"`
	MaxReducerPairs int64 `json:"max_reducer_pairs"`
	// Skew is the max/mean reducer-load ratio (Stats.MaxReducerSkew);
	// a ratio of exact integer counters, so it is deterministic.
	Skew float64 `json:"skew,omitempty"`
}

// ReducePhase is the reduce side of one round.
type ReducePhase struct {
	WallUS   int64 `json:"wall_us"`
	Keys     int64 `json:"keys"`
	Records  int64 `json:"records"`
	Attempts int64 `json:"attempts"`
	Failures int64 `json:"failures"`
}

// RoundProfile decomposes one map-reduce job into its phases.
type RoundProfile struct {
	Job     string       `json:"job"`
	WallUS  int64        `json:"wall_us"`
	Map     MapPhase     `json:"map"`
	Shuffle ShufflePhase `json:"shuffle"`
	Reduce  ReducePhase  `json:"reduce"`
}

// Profile is the structured record of one Execute call: per-round/
// per-phase wall time, bytes, pairs, skew, combiner effectiveness and
// chain/checkpoint accounting. Every field except the *_us wall times
// is derived from deterministic counters, so Normalize (wall fields
// zeroed) yields a byte-stable JSON encoding for identical executions.
type Profile struct {
	Query  string `json:"query"`
	Method string `json:"method"`
	// Cells is the reducer-cell count of the partitioning, read from
	// the run span (0 when the execution was not traced).
	Cells  int64          `json:"cells,omitempty"`
	WallUS int64          `json:"wall_us"`
	Rounds []RoundProfile `json:"rounds,omitempty"`

	IntermediatePairs          int64 `json:"intermediate_pairs"`
	RectanglesReplicated       int64 `json:"rectangles_replicated"`
	RectanglesAfterReplication int64 `json:"rectangles_after_replication"`
	ReplicationCopies          int64 `json:"replication_copies"`
	OutputTuples               int64 `json:"output_tuples"`

	DFS   dfs.Stats             `json:"dfs"`
	Chain *mapreduce.ChainStats `json:"chain,omitempty"`

	// UnfinishedSpans counts spans in the run's subtree that were
	// closed by FinishOpen (or were still open at Build time) — 0 on a
	// clean run, non-zero when a panic/cancel/error unwound past span
	// Ends.
	UnfinishedSpans int64 `json:"unfinished_spans,omitempty"`
}

// Build assembles a Profile from an execution's Stats and its span
// snapshot (nil when the run was not traced). Counters come from
// Stats; the tracer contributes the shuffle wall times, the cell
// count, and the unfinished-span tally. The spans of the *last* run
// span in the snapshot are used, so a tracer reused across sequential
// executions profiles the most recent one.
func Build(queryText string, st *spatial.Stats, spans []trace.Span) *Profile {
	p := &Profile{
		Query:                      queryText,
		Method:                     st.Method.String(),
		WallUS:                     st.Wall.Microseconds(),
		IntermediatePairs:          st.IntermediatePairs(),
		RectanglesReplicated:       st.RectanglesReplicated,
		RectanglesAfterReplication: st.RectanglesAfterReplication,
		ReplicationCopies:          st.ReplicationCopies,
		OutputTuples:               st.OutputTuples,
		DFS:                        st.DFS,
	}
	if st.Chain != nil {
		chain := *st.Chain
		p.Chain = &chain
	}
	for _, rst := range st.Rounds {
		p.Rounds = append(p.Rounds, roundFromStats(rst))
	}

	run, sub := lastRunSubtree(spans)
	if run == nil {
		return p
	}
	p.Cells = run.Counter("cells")
	// Attach span-measured walls. Job spans appear in ID (execution)
	// order; rounds resumed from checkpoints re-use recorded Stats but
	// ran no engine job, so advance through the job spans by matching
	// names rather than assuming one span per round.
	var jobs []trace.Span
	for _, s := range sub {
		if s.Counter(trace.UnfinishedCounter) > 0 || s.Dur < 0 {
			p.UnfinishedSpans++
		}
		if s.Kind == trace.KindJob {
			jobs = append(jobs, s)
		}
	}
	children := make(map[trace.SpanID][]trace.Span, len(sub))
	for _, s := range sub {
		children[s.Parent] = append(children[s.Parent], s)
	}
	ji := 0
	for i := range p.Rounds {
		if ji >= len(jobs) || jobs[ji].Name != p.Rounds[i].Job {
			continue // resumed round: no job span, walls stay zero
		}
		for _, ph := range children[jobs[ji].ID] {
			if ph.Kind == trace.KindPhase && ph.Name == "shuffle" && ph.Dur > 0 {
				p.Rounds[i].Shuffle.WallUS = ph.Dur.Microseconds()
			}
		}
		ji++
	}
	return p
}

// roundFromStats converts one job's engine Stats into a RoundProfile
// (shuffle wall is filled in from the span tree by Build).
func roundFromStats(st *mapreduce.Stats) RoundProfile {
	r := RoundProfile{
		Job:    st.Job,
		WallUS: st.TotalWall.Microseconds(),
		Map: MapPhase{
			WallUS:     st.MapWall.Microseconds(),
			Records:    st.MapInputRecords,
			Attempts:   st.MapAttempts,
			Failures:   st.MapFailures,
			CombineIn:  st.CombineInputPairs,
			CombineOut: st.CombineOutputPairs,
		},
		Shuffle: ShufflePhase{
			Pairs:    st.IntermediatePairs,
			Bytes:    st.IntermediateBytes,
			Reducers: int64(len(st.PairsPerReducer)),
			Skew:     st.MaxReducerSkew(),
		},
		Reduce: ReducePhase{
			WallUS:   st.ReduceWall.Microseconds(),
			Keys:     st.ReduceInputKeys,
			Records:  st.ReduceOutputRecords,
			Attempts: st.ReduceAttempts,
			Failures: st.ReduceFailures,
		},
	}
	if st.CombineInputPairs > 0 {
		r.Map.CombineRatio = float64(st.CombineOutputPairs) / float64(st.CombineInputPairs)
	}
	for _, n := range st.PairsPerReducer {
		if n > r.Shuffle.MaxReducerPairs {
			r.Shuffle.MaxReducerPairs = n
		}
	}
	return r
}

// lastRunSubtree returns the last run span in the snapshot and all
// spans of its subtree (itself included) in ID order.
func lastRunSubtree(spans []trace.Span) (*trace.Span, []trace.Span) {
	var run *trace.Span
	for i := range spans {
		if spans[i].Kind == trace.KindRun {
			run = &spans[i]
		}
	}
	if run == nil {
		return nil, nil
	}
	in := map[trace.SpanID]bool{run.ID: true}
	var sub []trace.Span
	for _, s := range spans {
		if s.ID == run.ID || in[s.Parent] {
			in[s.ID] = true
			sub = append(sub, s)
		}
	}
	return run, sub
}

// Normalize returns a deep copy with every wall-time field zeroed —
// the deterministic variant: for a given query, config and method, two
// executions produce byte-identical JSON encodings of the normalized
// profile regardless of machine speed, parallelism (with NumMappers
// pinned) or injected faults.
func (p *Profile) Normalize() *Profile {
	out := *p
	out.WallUS = 0
	if p.Chain != nil {
		chain := *p.Chain
		out.Chain = &chain
	}
	out.Rounds = make([]RoundProfile, len(p.Rounds))
	for i, r := range p.Rounds {
		r.WallUS, r.Map.WallUS, r.Shuffle.WallUS, r.Reduce.WallUS = 0, 0, 0, 0
		out.Rounds[i] = r
	}
	return &out
}

// WriteText renders the profile as the human-readable tree behind
// mwsjoin's -profile flag.
func (p *Profile) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "profile %s %q\n", p.Method, p.Query)
	fmt.Fprintf(bw, "  wall %s  cells %d  rounds %d  output tuples %d\n",
		us(p.WallUS), p.Cells, len(p.Rounds), p.OutputTuples)
	fmt.Fprintf(bw, "  pairs %d  replicated %d  copies %d (+%d projections)\n",
		p.IntermediatePairs, p.RectanglesReplicated, p.ReplicationCopies,
		p.RectanglesAfterReplication-p.ReplicationCopies)
	for i, r := range p.Rounds {
		fmt.Fprintf(bw, "  round %d %s  wall %s\n", i+1, r.Job, us(r.WallUS))
		fmt.Fprintf(bw, "    map     %-9s records=%d attempts=%d failures=%d",
			us(r.Map.WallUS), r.Map.Records, r.Map.Attempts, r.Map.Failures)
		if r.Map.CombineIn > 0 {
			fmt.Fprintf(bw, " combine %d→%d (%.1f%%)", r.Map.CombineIn, r.Map.CombineOut, 100*r.Map.CombineRatio)
		}
		fmt.Fprintln(bw)
		fmt.Fprintf(bw, "    shuffle %-9s pairs=%d bytes=%d reducers=%d max=%d skew=%.2f\n",
			us(r.Shuffle.WallUS), r.Shuffle.Pairs, r.Shuffle.Bytes,
			r.Shuffle.Reducers, r.Shuffle.MaxReducerPairs, r.Shuffle.Skew)
		fmt.Fprintf(bw, "    reduce  %-9s keys=%d out=%d attempts=%d failures=%d\n",
			us(r.Reduce.WallUS), r.Reduce.Keys, r.Reduce.Records, r.Reduce.Attempts, r.Reduce.Failures)
	}
	if c := p.Chain; c != nil {
		fmt.Fprintf(bw, "  chain jobs %d (run %d, resumed %d)  checkpoint %dB written / %dB read\n",
			c.Jobs, c.JobsRun, c.ResumedJobs, c.CheckpointBytesWritten, c.CheckpointBytesRead)
	}
	fmt.Fprintf(bw, "  dfs %dB written, %dB read (%d/%d records)\n",
		p.DFS.BytesWritten, p.DFS.BytesRead, p.DFS.RecordsWritten, p.DFS.RecordsRead)
	if p.UnfinishedSpans > 0 {
		fmt.Fprintf(bw, "  ⚠ %d unfinished spans (execution did not complete cleanly)\n", p.UnfinishedSpans)
	}
	return bw.Flush()
}

// us formats a microsecond count for display.
func us(n int64) string {
	return formatDur(time.Duration(n) * time.Microsecond)
}

// formatDur rounds a duration for display (mirrors trace's tree
// formatting).
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
