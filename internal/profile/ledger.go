package profile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"

	"mwsjoin/internal/spatial"
)

// PhaseCosts is one side (predicted or actual) of a ledger entry: the
// per-phase cost figures the EXPLAIN predictor estimates and the
// executed Stats measure. Actual values are exact integers widened to
// float64 so the two sides are directly comparable.
type PhaseCosts struct {
	// RoundPairs is the per-job shuffled pair count, in execution
	// order (Prediction.RoundPairs vs Stats.Rounds[i].IntermediatePairs).
	RoundPairs []float64 `json:"round_pairs,omitempty"`
	// Pairs is the total (Prediction.Pairs vs Stats.IntermediatePairs()).
	Pairs float64 `json:"pairs"`
	// Replicated counts rectangles chosen for replication
	// (Prediction.Replicated vs Stats.RectanglesReplicated).
	Replicated float64 `json:"replicated"`
	// Copies counts rectangle copies shipped to the join round
	// (Prediction.Copies vs Stats.RectanglesAfterReplication).
	Copies float64 `json:"copies"`
	// Tuples is the output cardinality (Prediction.Tuples vs
	// Stats.OutputTuples).
	Tuples float64 `json:"tuples"`
}

// LedgerEntry records one query's predicted-vs-actual phase costs —
// one line of the calibration ledger.
type LedgerEntry struct {
	Query     string     `json:"query"`
	Method    string     `json:"method"`
	Cells     int        `json:"cells"`
	Predicted PhaseCosts `json:"predicted"`
	Actual    PhaseCosts `json:"actual"`
}

// NewLedgerEntry pairs an (uncalibrated) prediction with the executed
// Stats, field-for-field: each Predicted member's Actual counterpart
// is the Stats field the Prediction doc comments name.
func NewLedgerEntry(queryText string, pred *spatial.Prediction, st *spatial.Stats) LedgerEntry {
	e := LedgerEntry{
		Query:  queryText,
		Method: pred.Method.String(),
		Cells:  pred.Cells,
		Predicted: PhaseCosts{
			RoundPairs: append([]float64(nil), pred.RoundPairs...),
			Pairs:      pred.Pairs,
			Replicated: pred.Replicated,
			Copies:     pred.Copies,
			Tuples:     pred.Tuples,
		},
		Actual: PhaseCosts{
			Pairs:      float64(st.IntermediatePairs()),
			Replicated: float64(st.RectanglesReplicated),
			Copies:     float64(st.RectanglesAfterReplication),
			Tuples:     float64(st.OutputTuples),
		},
	}
	for _, r := range st.Rounds {
		e.Actual.RoundPairs = append(e.Actual.RoundPairs, float64(r.IntermediatePairs))
	}
	return e
}

// Ledger is the persistent calibration ledger: JSON lines on the real
// file system, appended once per executed query. Append is safe for
// concurrent use within a process; the file is opened O_APPEND per
// write so multiple daemons sharing a ledger interleave whole lines.
type Ledger struct {
	path string
	mu   sync.Mutex
}

// OpenLedger returns a ledger writing to path. The file is created on
// first Append.
func OpenLedger(path string) *Ledger { return &Ledger{path: path} }

// Path returns the ledger's file path.
func (l *Ledger) Path() string { return l.path }

// Append writes one entry as a JSON line.
func (l *Ledger) Append(e LedgerEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("profile: encode ledger entry: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("profile: open ledger: %w", err)
	}
	_, werr := f.Write(append(b, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("profile: append ledger: %w", werr)
	}
	return nil
}

// ReadLedger loads every entry of a ledger file; a missing file is an
// empty ledger, not an error.
func ReadLedger(path string) ([]LedgerEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	} else if err != nil {
		return nil, fmt.Errorf("profile: open ledger: %w", err)
	}
	defer f.Close()
	var out []LedgerEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e LedgerEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("profile: ledger %s line %d: %w", path, len(out)+1, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("profile: read ledger: %w", err)
	}
	return out, nil
}

// Calibrate derives per-method/per-phase multiplicative correction
// factors from a ledger: for each (method, phase field) the factor is
// the geometric mean of actual/predicted over the entries where both
// sides are positive — the estimator in log space that minimizes mean
// squared log-ratio error, so consistent over- or under-prediction is
// corrected exactly and mixed residuals average out. Entries whose
// method no longer parses are skipped, as is any phase pair where
// either side is zero, negative or non-finite — a cache hit or
// zero-pair round records a zero actual, and log 0 would drive the
// factor to 0 or -Inf. Every returned factor is finite and positive.
// With no usable entries the returned calibration is the identity.
func Calibrate(entries []LedgerEntry) *spatial.Calibration {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	add := func(m spatial.Method, field string, pred, actual float64) {
		// The inverted comparisons also reject NaN (which fails every
		// ordered comparison, so a plain pred <= 0 guard lets it through
		// into math.Log and poisons the whole sum); IsInf catches the
		// rest of the non-finite inputs a corrupt ledger line can carry.
		if !(pred > 0) || !(actual > 0) || math.IsInf(pred, 0) || math.IsInf(actual, 0) {
			return
		}
		k := spatial.CalibrationKey(m, field)
		// Clamp the log ratio so that even absurd (but finite) ledger
		// values cannot push the mean past where math.Exp overflows to
		// +Inf (≈709.8); e^±512 is already far beyond any correction a
		// real workload needs.
		sums[k] += max(-512, min(512, math.Log(actual/pred)))
		counts[k]++
	}
	for _, e := range entries {
		m, err := spatial.ParseMethod(e.Method)
		if err != nil {
			continue
		}
		for i, p := range e.Predicted.RoundPairs {
			if i < len(e.Actual.RoundPairs) {
				add(m, fmt.Sprintf("round%d", i), p, e.Actual.RoundPairs[i])
			}
		}
		add(m, "pairs", e.Predicted.Pairs, e.Actual.Pairs)
		add(m, "replicated", e.Predicted.Replicated, e.Actual.Replicated)
		add(m, "copies", e.Predicted.Copies, e.Actual.Copies)
		add(m, "tuples", e.Predicted.Tuples, e.Actual.Tuples)
	}
	cal := &spatial.Calibration{Factors: make(map[string]float64, len(sums))}
	for k, sum := range sums {
		cal.Factors[k] = math.Exp(sum / float64(counts[k]))
	}
	return cal
}
