package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mwsjoin/internal/trace"
)

// chromeEvent is one complete ("ph":"X") event of the Chrome
// trace-event format; ts/dur are microseconds, the format's native
// unit, so span offsets map 1:1.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   int64            `json:"ts"`
	Dur  int64            `json:"dur"`
	PID  int64            `json:"pid"`
	TID  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the trace-event
// format — the variant chrome://tracing and Perfetto both load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// hierarchyTID is the virtual thread carrying the strictly nested
// run/round/job/phase spans; task attempts get per-task lanes above it
// because concurrent attempts overlap in time and would break the
// viewer's stack nesting on a shared track.
const hierarchyTID = 1

// WriteChromeTrace exports a span snapshot as Chrome trace-event JSON
// loadable by chrome://tracing and Perfetto. Every span becomes one
// complete event: the span kind is the category, counters become args.
// A span still open in the snapshot is emitted with duration 0 and an
// "open" arg — the format rejects negative durations — and spans
// closed by FinishOpen carry their unfinished arg as a counter.
func WriteChromeTrace(w io.Writer, spans []trace.Span) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans))}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  string(s.Kind),
			Ph:   "X",
			TS:   s.Start.Microseconds(),
			Dur:  s.Dur.Microseconds(),
			PID:  1,
			TID:  hierarchyTID,
		}
		if s.Kind == trace.KindTask {
			ev.TID = taskTID(s.Name)
		}
		if len(s.Counters) > 0 {
			ev.Args = s.Counters
		}
		if s.Dur < 0 {
			ev.Dur = 0
			args := make(map[string]int64, len(s.Counters)+1)
			for k, v := range s.Counters {
				args[k] = v
			}
			args["open"] = 1
			ev.Args = args
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// taskTID derives a stable lane for a task attempt from its
// "<kind>-<task>#<attempt>" name, so attempts of different tasks (which
// ran concurrently) land on different tracks.
func taskTID(name string) int64 {
	base := name
	if i := strings.IndexByte(base, '#'); i >= 0 {
		base = base[:i]
	}
	if i := strings.LastIndexByte(base, '-'); i >= 0 {
		if n, err := strconv.Atoi(base[i+1:]); err == nil && n >= 0 {
			return hierarchyTID + 1 + int64(n)
		}
	}
	return hierarchyTID + 1
}

// ValidateChromeTrace checks that data is a loadable trace-event JSON
// document: an object with a non-empty traceEvents array of complete
// events with non-empty names and non-negative timestamps/durations —
// the invariants chrome://tracing enforces at load time.
func ValidateChromeTrace(data []byte) error {
	var tr chromeTrace
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		return fmt.Errorf("profile: chrome trace is not valid JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("profile: chrome trace has no events")
	}
	for i, ev := range tr.TraceEvents {
		switch {
		case ev.Ph != "X":
			return fmt.Errorf("profile: event %d: phase %q, want complete event \"X\"", i, ev.Ph)
		case ev.Name == "":
			return fmt.Errorf("profile: event %d: empty name", i)
		case ev.TS < 0:
			return fmt.Errorf("profile: event %d (%s): negative timestamp %d", i, ev.Name, ev.TS)
		case ev.Dur < 0:
			return fmt.Errorf("profile: event %d (%s): negative duration %d", i, ev.Name, ev.Dur)
		case ev.PID <= 0 || ev.TID <= 0:
			return fmt.Errorf("profile: event %d (%s): non-positive pid/tid", i, ev.Name)
		}
	}
	return nil
}
