package profile

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mwsjoin/internal/query"
	"mwsjoin/internal/spatial"
	"mwsjoin/internal/trace"
)

// TestChromeTraceExportValidates is the acceptance check: a real
// traced execution exports to trace-event JSON that passes the schema
// validator — every span becomes a complete event with non-negative
// times, tasks land on their own lanes, and counters ride along as
// args.
func TestChromeTraceExportValidates(t *testing.T) {
	q := query.New("R1", "R2", "R3").Overlap(0, 1).Overlap(1, 2)
	rels := testRelations(21, 3, 200, 1000, 60)
	tr := trace.New()
	if _, err := spatial.Execute(spatial.ControlledReplicate, q, rels, spatial.Config{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}

	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(doc.TraceEvents) != len(spans) {
		t.Fatalf("%d events for %d spans", len(doc.TraceEvents), len(spans))
	}
	var cats, tids = map[string]int{}, map[int64]int{}
	for i, ev := range doc.TraceEvents {
		cats[ev.Cat]++
		tids[ev.TID]++
		if ev.TS != spans[i].Start.Microseconds() {
			t.Errorf("event %d ts %d != span start %d", i, ev.TS, spans[i].Start.Microseconds())
		}
	}
	for _, kind := range []string{"run", "round", "job", "phase", "task"} {
		if cats[kind] == 0 {
			t.Errorf("no %s events in export", kind)
		}
	}
	if len(tids) < 2 {
		t.Errorf("task lanes collapsed onto the hierarchy track: tids %v", tids)
	}
}

// TestChromeTraceOpenSpanFlagged: an open span exports with duration 0
// and an "open" arg — never a negative duration — and still validates.
func TestChromeTraceOpenSpanFlagged(t *testing.T) {
	tr := trace.New()
	run := tr.Start(0, trace.KindRun, "abandoned")
	tr.Add(run, "pairs", 3)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("open-span trace fails validation: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"open":1`) || strings.Contains(out, `"dur":-`) {
		t.Errorf("open span not flagged: %s", out)
	}
}

// TestValidateChromeTraceRejects covers the malformed documents the
// schema check must refuse.
func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":          `{"traceEvents":`,
		"no events":         `{"traceEvents":[],"displayTimeUnit":"ms"}`,
		"negative duration": `{"traceEvents":[{"name":"x","cat":"run","ph":"X","ts":0,"dur":-5,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"negative ts":       `{"traceEvents":[{"name":"x","cat":"run","ph":"X","ts":-1,"dur":5,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"empty name":        `{"traceEvents":[{"name":"","cat":"run","ph":"X","ts":0,"dur":5,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"wrong phase":       `{"traceEvents":[{"name":"x","cat":"run","ph":"B","ts":0,"dur":5,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`,
		"zero tid":          `{"traceEvents":[{"name":"x","cat":"run","ph":"X","ts":0,"dur":5,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`,
	}
	for name, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted %s", name, doc)
		}
	}
	good := `{"traceEvents":[{"name":"x","cat":"run","ph":"X","ts":0,"dur":5,"pid":1,"tid":1}],"displayTimeUnit":"ms"}`
	if err := ValidateChromeTrace([]byte(good)); err != nil {
		t.Errorf("validator rejected minimal valid trace: %v", err)
	}
}

// TestTaskTID: lanes derive from the task index, shared by attempts of
// the same task and distinct across tasks.
func TestTaskTID(t *testing.T) {
	if taskTID("map-3#1") != taskTID("map-3#2") {
		t.Error("attempts of one task split across lanes")
	}
	if taskTID("map-3#1") == taskTID("map-4#1") {
		t.Error("distinct tasks share a lane")
	}
	if taskTID("weird") <= 0 || taskTID("weird") == hierarchyTID {
		t.Error("unparseable task name must still land off the hierarchy track")
	}
}
