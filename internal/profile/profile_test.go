package profile

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"mwsjoin/internal/dfs"
	"mwsjoin/internal/geom"
	"mwsjoin/internal/mapreduce"
	"mwsjoin/internal/query"
	"mwsjoin/internal/spatial"
	"mwsjoin/internal/trace"
)

// testRelations builds nRel seeded relations of n rectangles each.
func testRelations(seed uint64, nRel, n int, space, maxDim float64) []spatial.Relation {
	rng := rand.New(rand.NewPCG(seed, 7))
	names := []string{"R1", "R2", "R3", "R4"}
	rels := make([]spatial.Relation, nRel)
	for i := range rels {
		rects := make([]geom.Rect, n)
		for j := range rects {
			rects[j] = geom.Rect{
				X: rng.Float64() * space,
				Y: rng.Float64() * space,
				L: rng.Float64() * maxDim,
				B: rng.Float64() * maxDim,
			}
		}
		rels[i] = spatial.NewRelation(names[i], rects)
	}
	return rels
}

var testMethods = []spatial.Method{
	spatial.Cascade, spatial.AllReplicate,
	spatial.ControlledReplicate, spatial.ControlledReplicateLimit,
}

// runProfile executes the query traced on a private FS and returns the
// normalized profile's canonical JSON.
func runProfile(t *testing.T, m spatial.Method, q *query.Query, rels []spatial.Relation, cfg spatial.Config) []byte {
	t.Helper()
	tr := trace.New()
	cfg.Tracer = tr
	if cfg.FS == nil {
		cfg.FS = dfs.New(0)
	}
	res, err := spatial.Execute(m, q, rels, cfg)
	if err != nil {
		t.Fatalf("%v: %v", m, err)
	}
	p := Build(q.String(), &res.Stats, tr.Spans())
	b, err := json.Marshal(p.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestProfileDeterministicAcrossParallelism is the acceptance property
// test: two runs of the same query produce byte-identical normalized
// profiles, across Parallelism {1, 2, 8}, plain and under fault
// injection. NumMappers is pinned (it defaults to Parallelism, and the
// mapper count is a real cost parameter: attempts and task spans scale
// with it).
func TestProfileDeterministicAcrossParallelism(t *testing.T) {
	q := query.New("R1", "R2", "R3").Overlap(0, 1).Range(1, 2, 40)
	rels := testRelations(11, 3, 220, 1000, 60)
	part, err := spatial.DefaultPartitioning(rels, 16)
	if err != nil {
		t.Fatal(err)
	}
	faults := spatial.Config{
		MaxAttempts: 3,
		FailMap:     func(m, a int) bool { return a == 1 && m%2 == 0 },
		FailReduce:  func(r, a int) bool { return a == 1 && r%5 == 1 },
	}
	for _, m := range testMethods {
		for name, fcfg := range map[string]spatial.Config{"plain": {}, "faults": faults} {
			var want []byte
			for _, par := range []int{1, 2, 8} {
				for rep := 0; rep < 2; rep++ {
					cfg := fcfg
					cfg.Part, cfg.NumMappers, cfg.Parallelism = part, 4, par
					got := runProfile(t, m, q, rels, cfg)
					if want == nil {
						want = got
					} else if !bytes.Equal(got, want) {
						t.Errorf("%v/%s: normalized profile diverges at parallelism %d rep %d:\n got %s\nwant %s",
							m, name, par, rep, got, want)
					}
				}
			}
		}
	}
}

// TestProfileDeterministicUnderKillResume extends the property to
// chain recovery: kill the chain at a job boundary, resume on the same
// FS, and the resumed run's normalized profile is byte-identical
// across parallelism and repeats.
func TestProfileDeterministicUnderKillResume(t *testing.T) {
	q := query.New("R1", "R2", "R3").Overlap(0, 1).Overlap(1, 2)
	rels := testRelations(12, 3, 200, 1000, 60)
	part, err := spatial.DefaultPartitioning(rels, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range testMethods {
		// Probe the chain length: the kill lands before the last job, so
		// single-job methods (All-Replicate) are killed at boundary 0.
		probe, err := spatial.Execute(m, q, rels, spatial.Config{Part: part, NumMappers: 4, FS: dfs.New(0)})
		if err != nil {
			t.Fatal(err)
		}
		killAt := int(probe.Stats.Chain.Jobs) - 1

		var want []byte
		for _, par := range []int{1, 2, 8} {
			for rep := 0; rep < 2; rep++ {
				fs := dfs.New(0)
				base := spatial.Config{Part: part, NumMappers: 4, Parallelism: par, FS: fs}
				kill := base
				kill.FailJob = func(i int) bool { return i == killAt }
				_, err := spatial.Execute(m, q, rels, kill)
				var killed *mapreduce.ChainKilledError
				if !errors.As(err, &killed) {
					t.Fatalf("%v: killed run err = %v", m, err)
				}
				resume := base
				resume.Resume = true
				got := runProfile(t, m, q, rels, resume)
				if want == nil {
					want = got
				} else if !bytes.Equal(got, want) {
					t.Errorf("%v: resumed profile diverges at parallelism %d rep %d", m, par, rep)
				}
			}
		}
		// The resumed profile must carry the recovery accounting.
		var p Profile
		if err := json.Unmarshal(want, &p); err != nil {
			t.Fatal(err)
		}
		if p.Chain == nil || (killAt > 0 && p.Chain.ResumedJobs == 0) {
			t.Errorf("%v: resumed profile chain accounting = %+v", m, p.Chain)
		}
	}
}

// TestProfileBuildFields cross-checks the assembled profile against
// the Stats it was built from, and exercises the text rendering.
func TestProfileBuildFields(t *testing.T) {
	q := query.New("R1", "R2", "R3").Overlap(0, 1).Overlap(1, 2)
	rels := testRelations(13, 3, 250, 1000, 60)
	tr := trace.New()
	res, err := spatial.Execute(spatial.ControlledReplicateLimit, q, rels, spatial.Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	st := &res.Stats
	p := Build(q.String(), st, tr.Spans())

	if p.Method != "c-rep-l" || p.Query != q.String() {
		t.Errorf("profile header = %q %q", p.Method, p.Query)
	}
	if p.Cells != 64 {
		t.Errorf("cells = %d, want 64 (default grid)", p.Cells)
	}
	if len(p.Rounds) != len(st.Rounds) {
		t.Fatalf("rounds = %d, want %d", len(p.Rounds), len(st.Rounds))
	}
	for i, r := range p.Rounds {
		rst := st.Rounds[i]
		if r.Job != rst.Job || r.Shuffle.Pairs != rst.IntermediatePairs ||
			r.Shuffle.Bytes != rst.IntermediateBytes || r.Map.Records != rst.MapInputRecords ||
			r.Reduce.Keys != rst.ReduceInputKeys || r.Reduce.Records != rst.ReduceOutputRecords {
			t.Errorf("round %d diverges from stats: %+v vs %+v", i, r, rst)
		}
		if r.Shuffle.Skew != rst.MaxReducerSkew() {
			t.Errorf("round %d skew = %v, want %v", i, r.Shuffle.Skew, rst.MaxReducerSkew())
		}
		if r.Map.WallUS != rst.MapWall.Microseconds() || r.Reduce.WallUS != rst.ReduceWall.Microseconds() {
			t.Errorf("round %d phase walls diverge from stats", i)
		}
		if r.Shuffle.WallUS <= 0 {
			t.Errorf("round %d shuffle wall = %d, want > 0 (from span tree)", i, r.Shuffle.WallUS)
		}
	}
	if p.IntermediatePairs != st.IntermediatePairs() || p.OutputTuples != st.OutputTuples {
		t.Errorf("totals diverge: %+v", p)
	}
	if p.Chain == nil || !reflect.DeepEqual(*p.Chain, *st.Chain) {
		t.Errorf("chain = %+v, want %+v", p.Chain, st.Chain)
	}
	if p.DFS != st.DFS {
		t.Errorf("dfs = %+v, want %+v", p.DFS, st.DFS)
	}
	if p.UnfinishedSpans != 0 {
		t.Errorf("clean run reports %d unfinished spans", p.UnfinishedSpans)
	}

	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"profile c-rep-l", "round 1", "round 2", "shuffle", "chain jobs", "dfs "} {
		if !strings.Contains(out, want) {
			t.Errorf("text profile missing %q:\n%s", want, out)
		}
	}

	// Normalize zeroes every wall field and only wall fields.
	n := p.Normalize()
	if n.WallUS != 0 {
		t.Error("Normalize kept run wall")
	}
	for i, r := range n.Rounds {
		if r.WallUS != 0 || r.Map.WallUS != 0 || r.Shuffle.WallUS != 0 || r.Reduce.WallUS != 0 {
			t.Errorf("Normalize kept round %d walls: %+v", i, r)
		}
		if r.Shuffle.Pairs != p.Rounds[i].Shuffle.Pairs {
			t.Errorf("Normalize changed a counter in round %d", i)
		}
	}
	if p.Rounds[0].WallUS == 0 && p.WallUS == 0 {
		t.Error("original profile mutated by Normalize")
	}
}

// TestProfileWithoutTracer: Build degrades gracefully when the run was
// not traced — counters and stats walls are still populated.
func TestProfileWithoutTracer(t *testing.T) {
	q := query.New("R1", "R2").Overlap(0, 1)
	rels := testRelations(14, 2, 150, 1000, 60)
	res, err := spatial.Execute(spatial.ControlledReplicate, q, rels, spatial.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := Build(q.String(), &res.Stats, nil)
	if p.Cells != 0 || len(p.Rounds) != len(res.Stats.Rounds) {
		t.Errorf("untraced profile = %+v", p)
	}
	if p.IntermediatePairs != res.Stats.IntermediatePairs() {
		t.Error("untraced profile lost counters")
	}
}

// TestPredictionReconcilesStats is the satellite regression test for
// the predicted-vs-actual table path: for every method × partition
// scheme, each Prediction phase field pairs with its documented
// mapreduce/spatial Stats counterpart, field-for-field, in the ledger
// entry the calibration loop records.
func TestPredictionReconcilesStats(t *testing.T) {
	q := query.New("R1", "R2", "R3").Overlap(0, 1).Range(1, 2, 40)
	rels := testRelations(15, 3, 260, 1000, 60)
	for _, scheme := range []spatial.PartitionScheme{spatial.PartitionUniform, spatial.PartitionAdaptive} {
		for _, m := range spatial.Methods() {
			cfg := spatial.Config{Scheme: scheme}
			pred, err := spatial.Predict(m, q, rels, cfg)
			if err != nil {
				t.Fatalf("%v/%v: predict: %v", scheme, m, err)
			}
			res, err := spatial.Execute(m, q, rels, cfg)
			if err != nil {
				t.Fatalf("%v/%v: execute: %v", scheme, m, err)
			}
			st := &res.Stats

			// Shape: one predicted round per executed job.
			if pred.Rounds != len(st.Rounds) || len(pred.RoundPairs) != len(st.Rounds) {
				t.Errorf("%v/%v: predicted %d rounds, executed %d", scheme, m, pred.Rounds, len(st.Rounds))
				continue
			}
			e := NewLedgerEntry(q.String(), pred, st)
			// Field-for-field: the entry's Actual side must equal the
			// Stats fields named in the Prediction doc comments.
			if len(e.Actual.RoundPairs) != len(st.Rounds) {
				t.Fatalf("%v/%v: actual rounds = %d", scheme, m, len(e.Actual.RoundPairs))
			}
			for i, r := range st.Rounds {
				if e.Actual.RoundPairs[i] != float64(r.IntermediatePairs) {
					t.Errorf("%v/%v round %d: actual pairs %v != stats %d", scheme, m, i, e.Actual.RoundPairs[i], r.IntermediatePairs)
				}
			}
			if e.Actual.Pairs != float64(st.IntermediatePairs()) ||
				e.Actual.Replicated != float64(st.RectanglesReplicated) ||
				e.Actual.Copies != float64(st.RectanglesAfterReplication) ||
				e.Actual.Tuples != float64(st.OutputTuples) {
				t.Errorf("%v/%v: actual side %+v does not reconcile with stats", scheme, m, e.Actual)
			}
			if e.Predicted.Pairs != pred.Pairs || e.Predicted.Copies != pred.Copies ||
				e.Predicted.Replicated != pred.Replicated || e.Predicted.Tuples != pred.Tuples {
				t.Errorf("%v/%v: predicted side %+v does not reconcile with prediction", scheme, m, e.Predicted)
			}
			// Regression guard on predictor quality: the estimate must
			// stay the right order of magnitude on this fixed workload.
			if m != spatial.BruteForce {
				if e.Actual.Pairs <= 0 || e.Predicted.Pairs <= 0 {
					t.Fatalf("%v/%v: degenerate workload (pred %v, actual %v)", scheme, m, e.Predicted.Pairs, e.Actual.Pairs)
				}
				if ratio := e.Predicted.Pairs / e.Actual.Pairs; ratio < 0.25 || ratio > 4 {
					t.Errorf("%v/%v: predicted/actual pairs ratio %.2f outside [0.25, 4]", scheme, m, ratio)
				}
			}
		}
	}
}
