package profile

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"mwsjoin/internal/mapreduce"
	"mwsjoin/internal/query"
	"mwsjoin/internal/spatial"
)

// TestLedgerRoundTrip: Append writes JSON lines that ReadLedger
// restores exactly; a missing ledger reads as empty.
func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if got, err := ReadLedger(path); err != nil || got != nil {
		t.Fatalf("missing ledger = %v, %v; want nil, nil", got, err)
	}
	l := OpenLedger(path)
	entries := []LedgerEntry{
		{Query: "A ov B", Method: "c-rep", Cells: 64,
			Predicted: PhaseCosts{RoundPairs: []float64{100.5, 200}, Pairs: 300.5, Replicated: 10, Copies: 210, Tuples: 42},
			Actual:    PhaseCosts{RoundPairs: []float64{110, 190}, Pairs: 300, Replicated: 12, Copies: 200, Tuples: 40}},
		{Query: "A ov B and B ov C", Method: "all-replicate", Cells: 16,
			Predicted: PhaseCosts{RoundPairs: []float64{500}, Pairs: 500, Replicated: 300, Copies: 500, Tuples: 7},
			Actual:    PhaseCosts{RoundPairs: []float64{480}, Pairs: 480, Replicated: 300, Copies: 480, Tuples: 7}},
	}
	for _, e := range entries {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, entries)
	}
}

// TestCalibrateFactors: the factor for each (method, phase) key is the
// geometric mean of actual/predicted, and unusable sides are skipped.
func TestCalibrateFactors(t *testing.T) {
	entries := []LedgerEntry{
		{Method: "c-rep", Predicted: PhaseCosts{RoundPairs: []float64{100}, Pairs: 100, Tuples: 10}, Actual: PhaseCosts{RoundPairs: []float64{200}, Pairs: 200, Tuples: 10}},
		{Method: "c-rep", Predicted: PhaseCosts{RoundPairs: []float64{100}, Pairs: 100, Tuples: 0}, Actual: PhaseCosts{RoundPairs: []float64{800}, Pairs: 800, Tuples: 5}},
		{Method: "no-such-method", Predicted: PhaseCosts{Pairs: 1}, Actual: PhaseCosts{Pairs: 100}},
	}
	cal := Calibrate(entries)
	// Geometric mean of 2× and 8× is 4×.
	if f := cal.Factor(spatial.ControlledReplicate, "pairs"); math.Abs(f-4) > 1e-9 {
		t.Errorf("pairs factor = %v, want 4", f)
	}
	if f := cal.Factors[spatial.CalibrationKey(spatial.ControlledReplicate, "round0")]; math.Abs(f-4) > 1e-9 {
		t.Errorf("round0 factor = %v, want 4", f)
	}
	// The zero-tuples entry contributes nothing to the tuples factor.
	if f := cal.Factor(spatial.ControlledReplicate, "tuples"); math.Abs(f-1) > 1e-9 {
		t.Errorf("tuples factor = %v, want 1 (single ratio of 1)", f)
	}
	// Unknown methods are skipped entirely.
	for k := range cal.Factors {
		if k[:2] == "no" {
			t.Errorf("unknown method leaked into factors: %s", k)
		}
	}
	// Identity on an empty ledger.
	if f := Calibrate(nil).Factor(spatial.Cascade, "pairs"); f != 1 {
		t.Errorf("empty calibration factor = %v, want 1", f)
	}
}

// logErr is the per-phase error metric: |log(predicted/actual)| summed
// over every phase field with both sides positive. Relative error in
// log space, so 2× over- and under-prediction weigh equally.
func logErr(pred *spatial.Prediction, a PhaseCosts) float64 {
	var sum float64
	add := func(p, act float64) {
		if p > 0 && act > 0 {
			sum += math.Abs(math.Log(p / act))
		}
	}
	for i, p := range pred.RoundPairs {
		if i < len(a.RoundPairs) {
			add(p, a.RoundPairs[i])
		}
	}
	add(pred.Replicated, a.Replicated)
	add(pred.Copies, a.Copies)
	add(pred.Tuples, a.Tuples)
	return sum
}

// TestCalibrationTightensPrediction is the acceptance criterion: on a
// fixed two-workload suite, per-phase relative error after applying
// the ledger-derived calibration is strictly lower than uncalibrated
// for every map-reduce method — and calibration changes no query
// results.
func TestCalibrationTightensPrediction(t *testing.T) {
	q := query.New("R1", "R2", "R3").Overlap(0, 1).Range(1, 2, 40)
	workloads := [][]spatial.Relation{
		testRelations(31, 3, 260, 1000, 60),
		testRelations(32, 3, 180, 800, 45),
	}
	ledger := OpenLedger(filepath.Join(t.TempDir(), "calib.jsonl"))

	type run struct {
		pred   *spatial.Prediction
		actual PhaseCosts
	}
	runs := make(map[spatial.Method][]run)
	for _, rels := range workloads {
		for _, m := range testMethods {
			pred, err := spatial.Predict(m, q, rels, spatial.Config{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := spatial.Execute(m, q, rels, spatial.Config{CountOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			e := NewLedgerEntry(q.String(), pred, &res.Stats)
			if err := ledger.Append(e); err != nil {
				t.Fatal(err)
			}
			runs[m] = append(runs[m], run{pred: pred, actual: e.Actual})
		}
	}

	entries, err := ReadLedger(ledger.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2*len(testMethods) {
		t.Fatalf("ledger has %d entries, want %d", len(entries), 2*len(testMethods))
	}
	cal := Calibrate(entries)

	for _, m := range testMethods {
		var pre, post float64
		for _, r := range runs[m] {
			pre += logErr(r.pred, r.actual)
			post += logErr(cal.Apply(r.pred), r.actual)
		}
		// Regression guard: the uncalibrated predictor must actually be
		// off on this suite (otherwise "strictly lower" is vacuous), and
		// calibration must strictly tighten it.
		if pre < 0.01 {
			t.Errorf("%v: uncalibrated error %.4f too small for a meaningful test", m, pre)
		}
		if post >= pre {
			t.Errorf("%v: calibration did not tighten prediction: pre %.4f, post %.4f", m, pre, post)
		}
	}

	// A calibrated Predict must price with the learned factors...
	rels := workloads[0]
	for _, m := range testMethods {
		raw, err := spatial.Predict(m, q, rels, spatial.Config{})
		if err != nil {
			t.Fatal(err)
		}
		calibrated, err := spatial.Predict(m, q, rels, spatial.Config{Calibration: cal})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(calibrated, cal.Apply(raw)) {
			t.Errorf("%v: Predict(Calibration) != Apply(Predict())", m)
		}
	}
	// ...while execution results stay bit-identical with calibration on.
	for _, m := range testMethods {
		plain, err := spatial.Execute(m, q, rels, spatial.Config{})
		if err != nil {
			t.Fatal(err)
		}
		calibrated, err := spatial.Execute(m, q, rels, spatial.Config{Calibration: cal})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Tuples, calibrated.Tuples) || !reflect.DeepEqual(plain.Stats, statsNoWall(calibrated.Stats, plain.Stats)) {
			t.Errorf("%v: enabling calibration changed execution results", m)
		}
	}
}

// statsNoWall copies wall fields from want into got so the comparison
// covers every deterministic field.
func statsNoWall(got, want spatial.Stats) spatial.Stats {
	got.Wall = want.Wall
	rounds := make([]*mapreduce.Stats, len(got.Rounds))
	for i, r := range got.Rounds {
		cp := *r
		if i < len(want.Rounds) {
			w := want.Rounds[i]
			cp.MapWall, cp.ReduceWall, cp.TotalWall = w.MapWall, w.ReduceWall, w.TotalWall
		}
		rounds[i] = &cp
	}
	got.Rounds = rounds
	return got
}

// TestCalibrateDegenerateEntries is the regression battery for the
// geometric-mean blow-ups: ledger entries with zero, negative, NaN or
// infinite sides must be skipped, and every returned factor must be
// finite and strictly positive no matter how hostile the ledger is.
func TestCalibrateDegenerateEntries(t *testing.T) {
	inf := math.Inf(1)
	entries := []LedgerEntry{
		// Zero actuals (empty-result runs): log(0) would be -Inf.
		{Method: "c-rep-l", Predicted: PhaseCosts{RoundPairs: []float64{100}, Pairs: 100, Tuples: 10}, Actual: PhaseCosts{RoundPairs: []float64{0}, Pairs: 0, Tuples: 0}},
		// Zero predictions: log(x/0) would be +Inf.
		{Method: "c-rep-l", Predicted: PhaseCosts{Pairs: 0, Copies: 0}, Actual: PhaseCosts{Pairs: 500, Copies: 80}},
		// NaN and Inf on either side.
		{Method: "c-rep-l", Predicted: PhaseCosts{Pairs: math.NaN(), Tuples: inf}, Actual: PhaseCosts{Pairs: 100, Tuples: 100}},
		{Method: "c-rep-l", Predicted: PhaseCosts{Pairs: 100, Tuples: 100}, Actual: PhaseCosts{Pairs: inf, Tuples: math.NaN()}},
		// Negative garbage.
		{Method: "c-rep-l", Predicted: PhaseCosts{Pairs: -10}, Actual: PhaseCosts{Pairs: 10}},
		// One honest entry so some factor is actually learned.
		{Method: "c-rep-l", Predicted: PhaseCosts{RoundPairs: []float64{100}, Pairs: 100, Tuples: 10}, Actual: PhaseCosts{RoundPairs: []float64{300}, Pairs: 300, Tuples: 10}},
		// An astronomical but finite ratio: the log-ratio clamp keeps the
		// learned factor finite after exp.
		{Method: "2-way-cascade", Predicted: PhaseCosts{Pairs: 1e-300}, Actual: PhaseCosts{Pairs: 1e300}},
	}
	cal := Calibrate(entries)
	for k, f := range cal.Factors {
		if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
			t.Errorf("factor %s = %v, want finite and positive", k, f)
		}
	}
	// The hostile entries contribute nothing: the one honest 3× entry is
	// the whole pairs factor.
	if f := cal.Factor(spatial.ControlledReplicateLimit, "pairs"); math.Abs(f-3) > 1e-9 {
		t.Errorf("pairs factor = %v, want 3 (only the honest entry counts)", f)
	}
	if f := cal.Factor(spatial.ControlledReplicateLimit, "round0"); math.Abs(f-3) > 1e-9 {
		t.Errorf("round0 factor = %v, want 3", f)
	}
	// Applying a learned-from-garbage calibration keeps predictions
	// finite.
	pred := &spatial.Prediction{Method: spatial.ControlledReplicateLimit,
		RoundPairs: []float64{10, 20}, Pairs: 30, Replicated: 5, Copies: 15, Tuples: 7}
	got := cal.Apply(pred)
	for _, v := range []float64{got.Pairs, got.Replicated, got.Copies, got.Tuples} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("calibrated prediction has non-finite field %v", v)
		}
	}
}
