// Package grid implements the rectilinear partitioning of the 2D space
// and the three transform operations — Project, Split and Replicate —
// defined in §4 of the paper. A partitioning divides the space into
// disjoint partition-cells; one map-reduce reducer is responsible for
// each cell, so the transforms fully determine which reducers receive a
// rectangle.
//
// Cell ownership is half-open to make point location unambiguous: a
// cell owns x ∈ [left, right) and y ∈ (bottom, top], with the outermost
// boundaries clamped into the edge cells. Consequently a vertical grid
// line belongs to the cell on its right and a horizontal grid line to
// the cell below it, and every cell owns its own start-point (top-left
// corner). The Split operation, in contrast, follows the paper's "at
// least one point in common" definition on closed rectangles, so a
// rectangle that merely touches a grid line from the left still splits
// onto the cell owning that line; this keeps Split consistent with the
// closed Overlap predicate.
package grid

import (
	"fmt"
	"math"
	"sort"

	"mwsjoin/internal/geom"
)

// CellID identifies a partition-cell; cells are numbered row-major
// starting from the top-left cell, matching the figures in the paper
// (cell 1 in the paper is CellID 0 here). The id doubles as the
// intermediate key routed to reducers.
type CellID int32

// InvalidCell is returned by operations on empty regions.
const InvalidCell CellID = -1

// Metric selects the rectangle-to-rectangle distance used when limiting
// replication in Controlled-Replicate-in-Limit. The paper states its
// bounds with the Euclidean metric; the Chebyshev (L∞) metric is a
// provably safe superset (see DESIGN.md §3.2).
type Metric uint8

const (
	// MetricChebyshev measures the maximum per-axis gap. Default.
	MetricChebyshev Metric = iota
	// MetricEuclidean measures the closest-point distance, as in the
	// paper's Equation 2.
	MetricEuclidean
)

// Dist returns the distance between two rectangles under the metric.
func (m Metric) Dist(a, b geom.Rect) float64 {
	if m == MetricEuclidean {
		return a.Dist(b)
	}
	return a.ChebyshevDist(b)
}

func (m Metric) String() string {
	if m == MetricEuclidean {
		return "euclidean"
	}
	return "chebyshev"
}

// Partitioning is a rectilinear division of the bounded 2D space into
// rows × cols partition-cells. Cells in a row share a breadth and cells
// in a column share a length, but rows and columns may have different
// sizes (general rectilinear partitioning, §4).
type Partitioning struct {
	xCuts []float64 // ascending, len cols+1
	yCuts []float64 // ascending, len rows+1
	rows  int
	cols  int
}

// NewUniform builds a uniform rows × cols partitioning of the space
// bounds. This is the paper's experimental configuration: with k
// reducers the space is divided into a √k × √k grid (§5.1, §7.8.1).
func NewUniform(bounds geom.Rect, rows, cols int) (*Partitioning, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: rows and cols must be positive, got %d×%d", rows, cols)
	}
	if err := bounds.Validate(); err != nil {
		return nil, err
	}
	if bounds.L <= 0 || bounds.B <= 0 {
		return nil, fmt.Errorf("grid: bounds %v must have positive area", bounds)
	}
	xCuts := make([]float64, cols+1)
	for i := 0; i <= cols; i++ {
		xCuts[i] = bounds.MinX() + bounds.L*float64(i)/float64(cols)
	}
	yCuts := make([]float64, rows+1)
	for i := 0; i <= rows; i++ {
		yCuts[i] = bounds.MinY() + bounds.B*float64(i)/float64(rows)
	}
	return NewFromCuts(xCuts, yCuts)
}

// NewFromCuts builds a general rectilinear partitioning from ascending
// cut coordinates. xCuts has one entry per column boundary (cols+1
// entries) and yCuts one per row boundary (rows+1 entries, bottom to
// top).
func NewFromCuts(xCuts, yCuts []float64) (*Partitioning, error) {
	if len(xCuts) < 2 || len(yCuts) < 2 {
		return nil, fmt.Errorf("grid: need at least 2 cuts per axis, got %d×%d", len(xCuts), len(yCuts))
	}
	for _, cuts := range [][]float64{xCuts, yCuts} {
		for i := 1; i < len(cuts); i++ {
			if !(cuts[i] > cuts[i-1]) {
				return nil, fmt.Errorf("grid: cuts must be strictly ascending, got %v", cuts)
			}
		}
		for _, c := range cuts {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("grid: non-finite cut in %v", cuts)
			}
		}
	}
	p := &Partitioning{
		xCuts: append([]float64(nil), xCuts...),
		yCuts: append([]float64(nil), yCuts...),
		rows:  len(yCuts) - 1,
		cols:  len(xCuts) - 1,
	}
	return p, nil
}

// Rows returns the number of cell rows.
func (p *Partitioning) Rows() int { return p.rows }

// Cols returns the number of cell columns.
func (p *Partitioning) Cols() int { return p.cols }

// NumCells returns the total number of partition-cells, i.e. the number
// of reducers the partitioning is designed for.
func (p *Partitioning) NumCells() int { return p.rows * p.cols }

// Bounds returns the full space covered by the partitioning.
func (p *Partitioning) Bounds() geom.Rect {
	return geom.RectFromCorners(
		geom.Point{X: p.xCuts[0], Y: p.yCuts[0]},
		geom.Point{X: p.xCuts[p.cols], Y: p.yCuts[p.rows]},
	)
}

// id assembles a CellID from a (row, col) index pair, row 0 at the top.
func (p *Partitioning) id(row, col int) CellID {
	return CellID(row*p.cols + col)
}

// RowCol splits a CellID into its (row, col) indices.
func (p *Partitioning) RowCol(c CellID) (row, col int) {
	return int(c) / p.cols, int(c) % p.cols
}

// Valid reports whether c identifies a cell of this partitioning.
func (p *Partitioning) Valid(c CellID) bool {
	return c >= 0 && int(c) < p.NumCells()
}

// colOf locates the column owning coordinate x ([left, right) ownership
// with boundary clamping).
func (p *Partitioning) colOf(x float64) int {
	if x < p.xCuts[0] {
		return 0
	}
	if x >= p.xCuts[p.cols] {
		return p.cols - 1
	}
	// Largest i with xCuts[i] <= x: SearchFloat64s finds the first cut
	// >= x, which is the owning column when the cut equals x exactly
	// (vertical grid lines belong to the cell on their right).
	i := sort.SearchFloat64s(p.xCuts, x)
	if p.xCuts[i] == x {
		return i
	}
	return i - 1
}

// rowOf locates the row owning coordinate y ((bottom, top] ownership
// with boundary clamping). Row 0 is the topmost row.
func (p *Partitioning) rowOf(y float64) int {
	if y <= p.yCuts[0] {
		return p.rows - 1
	}
	if y > p.yCuts[p.rows] {
		return 0
	}
	// Smallest i with yCuts[i] >= y; y belongs to the band (yCuts[i-1], yCuts[i]].
	i := sort.SearchFloat64s(p.yCuts, y)
	return p.rows - i
}

// CellOf returns the cell owning point pt, clamped into the grid for
// points outside the bounds.
func (p *Partitioning) CellOf(pt geom.Point) CellID {
	return p.id(p.rowOf(pt.Y), p.colOf(pt.X))
}

// CellRect returns the closed rectangle spanned by cell c.
func (p *Partitioning) CellRect(c CellID) geom.Rect {
	row, col := p.RowCol(c)
	top := p.yCuts[p.rows-row]
	bottom := p.yCuts[p.rows-row-1]
	return geom.Rect{X: p.xCuts[col], Y: top, L: p.xCuts[col+1] - p.xCuts[col], B: top - bottom}
}

// CellStart returns the start-point (top-left corner) of cell c. Note
// that every cell owns its own start-point under the half-open
// ownership rule.
func (p *Partitioning) CellStart(c CellID) geom.Point {
	row, col := p.RowCol(c)
	return geom.Point{X: p.xCuts[col], Y: p.yCuts[p.rows-row]}
}

// Project implements the Project transform of §4: it returns the cell
// containing the start-point of the rectangle, written c_u in the
// paper.
func (p *Partitioning) Project(r geom.Rect) CellID {
	return p.CellOf(r.Start())
}

// splitRange computes the inclusive (row, col) index ranges of the
// cells the closed rectangle r has at least one point in common with.
// Cells are closed for this purpose (§4: "at least one point in
// common"), so an edge lying exactly on a grid cut touches the cells on
// both sides of it.
func (p *Partitioning) splitRange(r geom.Rect) (rowLo, rowHi, colLo, colHi int) {
	colLo = p.colOf(r.MinX())
	if colLo > 0 && p.xCuts[colLo] == r.MinX() {
		colLo-- // left edge on a cut also touches the column to its left
	}
	colHi = p.colOf(r.MaxX()) // colOf already owns cuts to the right column
	rowLo = p.rowOf(r.MaxY())
	if rowLo > 0 && p.yCuts[p.rows-rowLo] == r.MaxY() {
		rowLo-- // top edge on a cut also touches the row above
	}
	rowHi = p.rowOf(r.MinY()) // rowOf already owns cuts to the row below
	return rowLo, rowHi, colLo, colHi
}

// ForEachSplit invokes fn for every cell produced by the Split
// transform of §4: all partition-cells that share at least one point
// with the closed rectangle r. Cells are visited in ascending CellID
// order. Rectangles extending beyond the bounds are clamped into the
// edge cells.
func (p *Partitioning) ForEachSplit(r geom.Rect, fn func(CellID)) {
	rowLo, rowHi, colLo, colHi := p.splitRange(r)
	for row := rowLo; row <= rowHi; row++ {
		for col := colLo; col <= colHi; col++ {
			fn(p.id(row, col))
		}
	}
}

// Split returns the cells of the Split transform as a slice. Prefer
// ForEachSplit in hot paths.
func (p *Partitioning) Split(r geom.Rect) []CellID {
	out := make([]CellID, 0, 4)
	p.ForEachSplit(r, func(c CellID) { out = append(out, c) })
	return out
}

// SplitCount returns the number of cells Split would produce without
// materialising them.
func (p *Partitioning) SplitCount(r geom.Rect) int {
	rowLo, rowHi, colLo, colHi := p.splitRange(r)
	return (rowHi - rowLo + 1) * (colHi - colLo + 1)
}

// Crosses reports whether the rectangle has at least one point in
// common with more than one partition-cell — the condition C2 test of
// §7.4 ("rectangle u crosses the boundary of partition-cell c").
func (p *Partitioning) Crosses(r geom.Rect) bool {
	return p.SplitCount(r) > 1
}

// ForEachFourthQuadrant invokes fn for every cell in the 4th quadrant
// with respect to rectangle r (§4): all cells c with c.x ≥ c_u.x and
// c.y ≤ c_u.y where c_u is the cell of r. This is the replication
// function f1. Cells are visited in ascending CellID order; the cell of
// r itself is included.
func (p *Partitioning) ForEachFourthQuadrant(r geom.Rect, fn func(CellID)) {
	row0, col0 := p.RowCol(p.Project(r))
	for row := row0; row < p.rows; row++ {
		for col := col0; col < p.cols; col++ {
			fn(p.id(row, col))
		}
	}
}

// ReplicateF1 returns the f1 replication cells as a slice. Prefer
// ForEachFourthQuadrant in hot paths.
func (p *Partitioning) ReplicateF1(r geom.Rect) []CellID {
	out := make([]CellID, 0, 8)
	p.ForEachFourthQuadrant(r, func(c CellID) { out = append(out, c) })
	return out
}

// FourthQuadrantCount returns |C4(r)| without materialising the cells.
func (p *Partitioning) FourthQuadrantCount(r geom.Rect) int {
	row0, col0 := p.RowCol(p.Project(r))
	return (p.rows - row0) * (p.cols - col0)
}

// ForEachReplicateF2 invokes fn for every cell in the 4th quadrant with
// respect to r that is within distance d of r under the given metric —
// the replication function f2 of §4 used by Controlled-Replicate-in-
// Limit. Cells are visited in ascending CellID order.
func (p *Partitioning) ForEachReplicateF2(r geom.Rect, d float64, m Metric, fn func(CellID)) {
	if d < 0 {
		return
	}
	row0, col0 := p.RowCol(p.Project(r))
	// Cells further than d from r on either axis cannot qualify under
	// either metric, so restrict the scan to the enlarged bounding box.
	_, rowHi, _, colHi := p.splitRange(r.Enlarge(d))
	if rowHi < row0 {
		rowHi = row0
	}
	if colHi < col0 {
		colHi = col0
	}
	cell := geom.Rect{}
	for row := row0; row <= rowHi; row++ {
		for col := col0; col <= colHi; col++ {
			cell = p.CellRect(p.id(row, col))
			if m.Dist(cell, r) <= d {
				fn(p.id(row, col))
			}
		}
	}
}

// ReplicateF2 returns the f2 replication cells as a slice. Prefer
// ForEachReplicateF2 in hot paths.
func (p *Partitioning) ReplicateF2(r geom.Rect, d float64, m Metric) []CellID {
	out := make([]CellID, 0, 8)
	p.ForEachReplicateF2(r, d, m, func(c CellID) { out = append(out, c) })
	return out
}

// OtherCellWithin reports whether some cell different from exclude is
// within Euclidean distance d of the rectangle — the condition C2 test
// for Range predicates (§8): a rectangle starting in cell c can have a
// range-d relationship with a rectangle starting elsewhere only if a
// cell c' ≠ c is within distance d of it.
func (p *Partitioning) OtherCellWithin(r geom.Rect, exclude CellID, d float64) bool {
	if d < 0 {
		return false
	}
	rowLo, rowHi, colLo, colHi := p.splitRange(r.Enlarge(d))
	for row := rowLo; row <= rowHi; row++ {
		for col := colLo; col <= colHi; col++ {
			id := p.id(row, col)
			if id == exclude {
				continue
			}
			if p.CellRect(id).Dist(r) <= d {
				return true
			}
		}
	}
	return false
}

// DistToCell returns the Euclidean distance between cell c and the
// rectangle, the dist(c, r) of the paper's Equation 2.
func (p *Partitioning) DistToCell(c CellID, r geom.Rect) float64 {
	return p.CellRect(c).Dist(r)
}

// String describes the partitioning.
func (p *Partitioning) String() string {
	return fmt.Sprintf("grid %d×%d over %v", p.rows, p.cols, p.Bounds())
}
