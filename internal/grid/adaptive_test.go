package grid

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"mwsjoin/internal/geom"
)

// clusteredSample builds a heavily skewed point workload: most points
// in a few tight clusters, the rest uniform background.
func clusteredSample(n int, seed uint64) []geom.Rect {
	rng := rand.New(rand.NewPCG(seed, 42))
	centers := [][2]float64{{100, 900}, {150, 880}, {800, 200}}
	out := make([]geom.Rect, n)
	for i := range out {
		var x, y float64
		if rng.Float64() < 0.85 {
			c := centers[rng.IntN(len(centers))]
			x = c[0] + rng.NormFloat64()*10
			y = c[1] + rng.NormFloat64()*10
		} else {
			x = rng.Float64() * 1000
			y = rng.Float64() * 1000
		}
		out[i] = geom.Rect{X: clampFloat(x, 0, 995), Y: clampFloat(y, 5, 1000), L: 5, B: 5}
	}
	return out
}

func TestAdaptiveDeterministic(t *testing.T) {
	sample := clusteredSample(2000, 7)
	a, err := NewAdaptive(sample, AdaptiveOptions{Target: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAdaptive(sample, AdaptiveOptions{Target: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same sample produced different partitionings:\n%v\n%v", a.xCuts, b.xCuts)
	}
}

func TestAdaptiveRespectsTarget(t *testing.T) {
	sample := clusteredSample(3000, 11)
	for _, target := range []int{4, 16, 64, 100} {
		p, err := NewAdaptive(sample, AdaptiveOptions{Target: target})
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if p.NumCells() > target {
			t.Errorf("target %d: got %d cells", target, p.NumCells())
		}
		if p.NumCells() < 2 {
			t.Errorf("target %d: degenerate %d-cell grid on a splittable sample", target, p.NumCells())
		}
	}
}

func TestAdaptiveCoversBounds(t *testing.T) {
	sample := clusteredSample(500, 3)
	bounds := geom.Rect{X: 0, Y: 1000, L: 1000, B: 1000}
	p, err := NewAdaptive(sample, AdaptiveOptions{Target: 64, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bounds() != bounds {
		t.Errorf("Bounds() = %v, want %v", p.Bounds(), bounds)
	}
	// Every sample start-point projects to a valid cell.
	for _, r := range sample {
		c := p.Project(r)
		if c < 0 || int(c) >= p.NumCells() {
			t.Fatalf("Project(%v) = %d out of range", r, c)
		}
	}
}

// TestAdaptiveBalancesSkew is the constructor-level acceptance check:
// on the clustered sample the adaptive grid's max/median start-point
// load beats a same-size uniform grid's by a wide margin.
func TestAdaptiveBalancesSkew(t *testing.T) {
	sample := clusteredSample(4000, 13)
	bounds := geom.Rect{X: 0, Y: 1000, L: 1000, B: 1000}
	adaptive, err := NewAdaptive(sample, AdaptiveOptions{Target: 64, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := NewUniform(bounds, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ua, aa := startPointSkew(uniform, sample), startPointSkew(adaptive, sample)
	if aa*5 > ua {
		t.Errorf("adaptive max/median %.1f not ≥5× better than uniform %.1f", aa, ua)
	}
}

// startPointSkew computes max/median cell load of the rects'
// start-points under p, median floored at 1.
func startPointSkew(p *Partitioning, rects []geom.Rect) float64 {
	counts := make([]int64, p.NumCells())
	for _, r := range rects {
		counts[p.Project(r)]++
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	med := counts[len(counts)/2]
	if med < 1 {
		med = 1
	}
	return float64(counts[len(counts)-1]) / float64(med)
}

func TestAdaptiveDegenerateInputs(t *testing.T) {
	if _, err := NewAdaptive(nil, AdaptiveOptions{}); err == nil {
		t.Error("empty sample: want error")
	}
	// All-identical points: a valid (if trivial) partitioning.
	same := make([]geom.Rect, 100)
	for i := range same {
		same[i] = geom.Rect{X: 5, Y: 5, L: 0, B: 0}
	}
	p, err := NewAdaptive(same, AdaptiveOptions{Target: 16})
	if err != nil {
		t.Fatalf("identical points: %v", err)
	}
	if p.NumCells() != 1 {
		t.Errorf("identical points: got %d cells, want 1", p.NumCells())
	}
	// A single rectangle still yields a usable grid.
	if _, err := NewAdaptive([]geom.Rect{{X: 1, Y: 2, L: 3, B: 1}}, AdaptiveOptions{Target: 4}); err != nil {
		t.Fatalf("single rect: %v", err)
	}
}

// TestAdaptiveMergePrefersColdPairs: with two hot columns separated by
// a cold band, the merge pass removes cuts inside the cold band first.
func TestAdaptiveMergeKeepsHotResolution(t *testing.T) {
	var sample []geom.Rect
	rng := rand.New(rand.NewPCG(5, 9))
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 100 // hot left strip
		if i%2 == 0 {
			x = 900 + rng.Float64()*100 // hot right strip
		}
		sample = append(sample, geom.Rect{X: x, Y: 5 + rng.Float64()*990, L: 2, B: 2})
	}
	bounds := geom.Rect{X: 0, Y: 1000, L: 1000, B: 1000}
	p, err := NewAdaptive(sample, AdaptiveOptions{Target: 16, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	// Both hot strips must keep at least one interior cut; the cold
	// middle (100..900) should hold at most one.
	left, mid, right := 0, 0, 0
	for _, c := range p.xCuts[1 : len(p.xCuts)-1] {
		switch {
		case c <= 100:
			left++
		case c >= 900:
			right++
		default:
			mid++
		}
	}
	if left == 0 || right == 0 {
		t.Errorf("hot strips lost their cuts: left %d, right %d (cuts %v)", left, right, p.xCuts)
	}
	if mid > 1 {
		t.Errorf("cold band kept %d cuts (want ≤ 1): %v", mid, p.xCuts)
	}
}
