package grid

import (
	"math/rand/v2"
	"testing"

	"mwsjoin/internal/geom"
)

// clusteredRects concentrates most rectangles in one corner of the
// space — the skew pattern quantile partitioning exists for.
func clusteredRects(n int, rng *rand.Rand) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		if i%10 == 0 {
			// 10% background spread over the full space.
			rects[i] = geom.Rect{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, L: 5, B: 5}
		} else {
			// 90% in a 100×100 corner.
			rects[i] = geom.Rect{X: rng.Float64() * 100, Y: 900 + rng.Float64()*100, L: 5, B: 5}
		}
	}
	return rects
}

func TestNewQuantileBalancesSkew(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	rects := clusteredRects(4000, rng)
	bounds := geom.Rect{X: 0, Y: 1010, L: 1010, B: 1010}

	uniform, err := NewUniform(bounds, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	quantile, err := NewQuantile(rects, 8, 8, bounds)
	if err != nil {
		t.Fatal(err)
	}

	uSkew := uniform.SplitSkew(rects)
	qSkew := quantile.SplitSkew(rects)
	if qSkew >= uSkew/3 {
		t.Errorf("quantile skew %.2f not much better than uniform %.2f", qSkew, uSkew)
	}
	// Per-axis quantiles cannot fully flatten 2D-correlated clusters
	// (dense rows × dense columns compound), so "balanced" here means
	// single digits where the uniform grid is ~50.
	if qSkew > 4.5 {
		t.Errorf("quantile skew %.2f, want single digits", qSkew)
	}
	// Structure invariants hold.
	if quantile.NumCells() != 64 {
		t.Errorf("NumCells = %d", quantile.NumCells())
	}
	if got := quantile.Bounds(); got != bounds {
		t.Errorf("Bounds = %v, want %v", got, bounds)
	}
}

func TestNewQuantileDegenerateData(t *testing.T) {
	// All rectangles share a start point: cuts must still ascend.
	rects := make([]geom.Rect, 100)
	for i := range rects {
		rects[i] = geom.Rect{X: 50, Y: 50, L: 1, B: 1}
	}
	p, err := NewQuantile(rects, 4, 4, geom.Rect{X: 0, Y: 100, L: 100, B: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Every rectangle still lands somewhere consistent.
	for _, r := range rects {
		c := p.Project(r)
		if !p.Valid(c) {
			t.Fatalf("Project out of range: %d", c)
		}
	}
}

func TestNewQuantileValidation(t *testing.T) {
	rects := []geom.Rect{{X: 1, Y: 1, L: 1, B: 1}}
	if _, err := NewQuantile(nil, 2, 2, geom.Rect{}); err == nil {
		t.Error("empty data must fail")
	}
	if _, err := NewQuantile(rects, 0, 2, geom.Rect{}); err == nil {
		t.Error("zero rows must fail")
	}
	// Zero-area bounds fall back to the data's bounding box — a single
	// degenerate rectangle cannot support one, so this must fail
	// cleanly.
	if _, err := NewQuantile([]geom.Rect{{X: 1, Y: 1}}, 2, 2, geom.Rect{}); err == nil {
		t.Error("degenerate data bounds must fail")
	}
	// With explicit bounds it succeeds.
	if _, err := NewQuantile([]geom.Rect{{X: 1, Y: 1}}, 2, 2, geom.Rect{X: 0, Y: 10, L: 10, B: 10}); err != nil {
		t.Errorf("explicit bounds: %v", err)
	}
}

func TestSplitSkewUniformData(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	rects := make([]geom.Rect, 4000)
	for i := range rects {
		rects[i] = geom.Rect{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, L: 3, B: 3}
	}
	p, _ := NewUniform(geom.Rect{X: 0, Y: 1010, L: 1010, B: 1010}, 8, 8)
	if skew := p.SplitSkew(rects); skew > 1.6 {
		t.Errorf("uniform data skew = %.2f, want near 1", skew)
	}
	if skew := p.SplitSkew(nil); skew != 0 {
		t.Errorf("empty workload skew = %v", skew)
	}
}
