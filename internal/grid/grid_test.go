package grid

import (
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"mwsjoin/internal/geom"
)

// paperGrid reproduces the 4×4 partitioning of the paper's Figure 2:
// a 16-cell grid over [0,100]×[0,100]. Paper cell numbers are 1-based,
// CellIDs are 0-based, so paper cell n is CellID n-1.
func paperGrid(t testing.TB) *Partitioning {
	t.Helper()
	p, err := NewUniform(geom.Rect{X: 0, Y: 100, L: 100, B: 100}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// cell converts the paper's 1-based cell numbers to CellIDs.
func cell(n int) CellID { return CellID(n - 1) }

func cells(ns ...int) []CellID {
	out := make([]CellID, len(ns))
	for i, n := range ns {
		out[i] = cell(n)
	}
	return out
}

func TestNewUniformValidation(t *testing.T) {
	bounds := geom.Rect{X: 0, Y: 10, L: 10, B: 10}
	if _, err := NewUniform(bounds, 0, 4); err == nil {
		t.Error("zero rows must fail")
	}
	if _, err := NewUniform(bounds, 4, -1); err == nil {
		t.Error("negative cols must fail")
	}
	if _, err := NewUniform(geom.Rect{X: 0, Y: 0, L: 0, B: 10}, 2, 2); err == nil {
		t.Error("zero-area bounds must fail")
	}
	if _, err := NewUniform(geom.Rect{X: math.NaN()}, 2, 2); err == nil {
		t.Error("NaN bounds must fail")
	}
}

func TestNewFromCutsValidation(t *testing.T) {
	if _, err := NewFromCuts([]float64{0}, []float64{0, 1}); err == nil {
		t.Error("single x cut must fail")
	}
	if _, err := NewFromCuts([]float64{0, 1, 1}, []float64{0, 1}); err == nil {
		t.Error("non-ascending cuts must fail")
	}
	if _, err := NewFromCuts([]float64{0, math.Inf(1)}, []float64{0, 1}); err == nil {
		t.Error("non-finite cut must fail")
	}
	p, err := NewFromCuts([]float64{0, 1, 5}, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows() != 1 || p.Cols() != 2 || p.NumCells() != 2 {
		t.Errorf("got %d×%d grid, want 1×2", p.Rows(), p.Cols())
	}
}

func TestCellGeometry(t *testing.T) {
	p := paperGrid(t)
	if p.NumCells() != 16 {
		t.Fatalf("NumCells = %d, want 16", p.NumCells())
	}
	// Paper cell 1 is the top-left cell: [0,25] x [75,100].
	r := p.CellRect(cell(1))
	if r != (geom.Rect{X: 0, Y: 100, L: 25, B: 25}) {
		t.Errorf("cell 1 rect = %v", r)
	}
	// Paper cell 16 is the bottom-right cell.
	r = p.CellRect(cell(16))
	if r != (geom.Rect{X: 75, Y: 25, L: 25, B: 25}) {
		t.Errorf("cell 16 rect = %v", r)
	}
	// Start point of cell 6 (row 1, col 1) is (25, 75).
	if s := p.CellStart(cell(6)); s != (geom.Point{X: 25, Y: 75}) {
		t.Errorf("cell 6 start = %v", s)
	}
	if b := p.Bounds(); b != (geom.Rect{X: 0, Y: 100, L: 100, B: 100}) {
		t.Errorf("Bounds = %v", b)
	}
}

func TestCellOfOwnership(t *testing.T) {
	p := paperGrid(t)
	tests := []struct {
		pt   geom.Point
		want CellID
	}{
		{geom.Point{X: 10, Y: 90}, cell(1)},
		{geom.Point{X: 30, Y: 60}, cell(6)},
		// A vertical grid line belongs to the cell on its right.
		{geom.Point{X: 25, Y: 90}, cell(2)},
		// A horizontal grid line belongs to the cell below it.
		{geom.Point{X: 10, Y: 75}, cell(5)},
		// Every cell owns its own start point.
		{p.CellStart(cell(6)), cell(6)},
		// Outer boundary points are clamped into edge cells.
		{geom.Point{X: 100, Y: 100}, cell(4)},
		{geom.Point{X: 0, Y: 0}, cell(13)},
		{geom.Point{X: 100, Y: 0}, cell(16)},
		// Points outside the bounds clamp to the nearest edge cell.
		{geom.Point{X: -5, Y: 200}, cell(1)},
		{geom.Point{X: 400, Y: 50}, cell(12)},
	}
	for _, tt := range tests {
		if got := p.CellOf(tt.pt); got != tt.want {
			t.Errorf("CellOf(%v) = %d, want %d", tt.pt, got+1, tt.want+1)
		}
	}
}

func TestRowColRoundTrip(t *testing.T) {
	p := paperGrid(t)
	for c := CellID(0); int(c) < p.NumCells(); c++ {
		row, col := p.RowCol(c)
		if p.id(row, col) != c {
			t.Fatalf("RowCol(%d) = (%d,%d) does not round-trip", c, row, col)
		}
		if !p.Valid(c) {
			t.Fatalf("Valid(%d) = false", c)
		}
	}
	if p.Valid(-1) || p.Valid(16) {
		t.Error("out-of-range ids must be invalid")
	}
}

// Figure 2(a)/2(c): rectangle r1 starts in cell 6 and extends into
// cell 7. Project returns 6; Split returns {6, 7}; Replicate(f1)
// returns cells 6-8, 10-12, 14-16.
func TestPaperFigure2Transforms(t *testing.T) {
	p := paperGrid(t)
	r1 := geom.Rect{X: 30, Y: 70, L: 30, B: 10} // starts in cell 6, reaches into cell 7

	if got := p.Project(r1); got != cell(6) {
		t.Errorf("Project(r1) = %d, want 6", got+1)
	}
	if got := p.Split(r1); !reflect.DeepEqual(got, cells(6, 7)) {
		t.Errorf("Split(r1) = %v, want cells 6,7", got)
	}
	if got := p.SplitCount(r1); got != 2 {
		t.Errorf("SplitCount(r1) = %d, want 2", got)
	}
	if !p.Crosses(r1) {
		t.Error("r1 must cross its cell boundary")
	}
	want := cells(6, 7, 8, 10, 11, 12, 14, 15, 16)
	if got := p.ReplicateF1(r1); !reflect.DeepEqual(got, want) {
		t.Errorf("ReplicateF1(r1) = %v, want %v", got, want)
	}
	if got := p.FourthQuadrantCount(r1); got != 9 {
		t.Errorf("FourthQuadrantCount(r1) = %d, want 9", got)
	}

	// Figure 2(c): Replicate(f2) with a small d keeps only cells
	// 6, 7, 10 and 11 — the 4th-quadrant cells within distance d.
	got := p.ReplicateF2(r1, 10, MetricEuclidean)
	if want := cells(6, 7, 10, 11); !reflect.DeepEqual(got, want) {
		t.Errorf("ReplicateF2(r1, 10) = %v, want %v", got, want)
	}
}

func TestSplitTouchingGridLine(t *testing.T) {
	p := paperGrid(t)
	// A closed rectangle whose right edge lies exactly on a grid line
	// shares that line with the next column, so Split includes it.
	r := geom.Rect{X: 10, Y: 90, L: 15, B: 5} // right edge at x=25
	if got := p.Split(r); !reflect.DeepEqual(got, cells(1, 2)) {
		t.Errorf("Split = %v, want cells 1,2", got)
	}
	if !p.Crosses(r) {
		t.Error("a rectangle touching a grid line crosses")
	}
	// A rectangle strictly inside a cell does not cross.
	in := geom.Rect{X: 10, Y: 90, L: 5, B: 5}
	if p.Crosses(in) {
		t.Error("interior rectangle must not cross")
	}
	// A degenerate point rectangle on the corner shared by cells
	// 1, 2, 5 and 6 splits onto all four of them.
	pt := geom.Rect{X: 25, Y: 75}
	if got := p.Split(pt); !reflect.DeepEqual(got, cells(1, 2, 5, 6)) {
		t.Errorf("Split(corner point) = %v, want cells 1,2,5,6", got)
	}
}

func TestSplitClampsOutOfBounds(t *testing.T) {
	p := paperGrid(t)
	r := geom.Rect{X: 90, Y: 10, L: 50, B: 50} // protrudes right and below
	if got := p.Split(r); !reflect.DeepEqual(got, cells(16)) {
		t.Errorf("Split = %v, want just cell 16", got)
	}
}

func TestReplicateF2Metrics(t *testing.T) {
	p := paperGrid(t)
	// A small rectangle in the top-left of cell 6.
	r := geom.Rect{X: 26, Y: 74, L: 2, B: 2}
	// With d just under the cell size, Euclidean excludes the diagonal
	// cell 11 region... compute: distance from r to cell 11 ([50,75]x
	// [25,50]) is hypot(50-28, 72-50) = hypot(22,22) ≈ 31.1; Chebyshev
	// is 22. Pick d = 25 to split the two metrics.
	d := 25.0
	eu := p.ReplicateF2(r, d, MetricEuclidean)
	ch := p.ReplicateF2(r, d, MetricChebyshev)
	if want := cells(6, 7, 10); !reflect.DeepEqual(eu, want) {
		t.Errorf("Euclidean f2 = %v, want %v", eu, want)
	}
	if want := cells(6, 7, 10, 11); !reflect.DeepEqual(ch, want) {
		t.Errorf("Chebyshev f2 = %v, want %v", ch, want)
	}
	if got := p.ReplicateF2(r, -1, MetricEuclidean); len(got) != 0 {
		t.Errorf("negative d must replicate nowhere, got %v", got)
	}
	// d = 0 keeps exactly the 4th-quadrant cells the rectangle touches.
	if got := p.ReplicateF2(r, 0, MetricEuclidean); !reflect.DeepEqual(got, cells(6)) {
		t.Errorf("f2 with d=0 = %v, want cell 6", got)
	}
}

func TestOtherCellWithin(t *testing.T) {
	p := paperGrid(t)
	center := geom.Rect{X: 35, Y: 65, L: 5, B: 5} // interior of cell 6
	own := p.Project(center)
	if p.OtherCellWithin(center, own, 4) {
		t.Error("no other cell within 4 of an interior rectangle")
	}
	if !p.OtherCellWithin(center, own, 10) {
		t.Error("cell 7 boundary is within 10")
	}
	// A crossing rectangle touches another cell, so distance 0 works.
	crossing := geom.Rect{X: 40, Y: 65, L: 20, B: 5}
	if !p.OtherCellWithin(crossing, p.Project(crossing), 0) {
		t.Error("crossing rectangle has another cell at distance 0")
	}
	if p.OtherCellWithin(center, own, -1) {
		t.Error("negative d must be false")
	}
}

func TestDistToCell(t *testing.T) {
	p := paperGrid(t)
	r := geom.Rect{X: 30, Y: 70, L: 5, B: 5}
	if got := p.DistToCell(cell(6), r); got != 0 {
		t.Errorf("dist to own cell = %v, want 0", got)
	}
	// Cell 8 spans [75,100] x [50,75]; r's right edge is at x=35.
	if got := p.DistToCell(cell(8), r); got != 40 {
		t.Errorf("dist to cell 8 = %v, want 40", got)
	}
	// Cell 11 spans [50,75] x [25,50]: diagonal gap (15, 15).
	want := math.Hypot(15, 15)
	if got := p.DistToCell(cell(11), r); math.Abs(got-want) > 1e-12 {
		t.Errorf("dist to cell 11 = %v, want %v", got, want)
	}
}

func TestMetricString(t *testing.T) {
	if MetricEuclidean.String() != "euclidean" || MetricChebyshev.String() != "chebyshev" {
		t.Error("unexpected metric names")
	}
}

// randomGridRect avoids placing edges exactly on the 4×4 grid's cuts
// (multiples of 25): Split uses closed cells, so an edge on a cut also
// touches the neighbouring row/column, which would break the
// 4th-quadrant containment property below. Cut-aligned edges are
// exercised by the dedicated boundary tests instead.
func randomGridRect(rng *rand.Rand) geom.Rect {
	return geom.Rect{
		X: math.Floor(rng.Float64()*100) + 0.25,
		Y: math.Floor(rng.Float64()*100) + 0.25,
		L: math.Floor(rng.Float64() * 30),
		B: math.Floor(rng.Float64() * 30),
	}
}

func gridQuickCfg() *quick.Config {
	rng := rand.New(rand.NewPCG(11, 13))
	return &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, _ *mrand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randomGridRect(rng))
			}
		},
	}
}

// Property: Project is always among Split's cells, Split is a subset of
// ReplicateF1 for cells at/after the projection corner... precisely:
// every Split cell lies in the 4th quadrant of the rectangle, so
// Split ⊆ ReplicateF1.
func TestPropSplitContainsProjectAndWithinF1(t *testing.T) {
	p := paperGrid(t)
	prop := func(r geom.Rect) bool {
		proj := p.Project(r)
		split := p.Split(r)
		f1 := map[CellID]bool{}
		p.ForEachFourthQuadrant(r, func(c CellID) { f1[c] = true })
		foundProj := false
		for _, c := range split {
			if c == proj {
				foundProj = true
			}
			if !f1[c] {
				return false
			}
		}
		return foundProj
	}
	if err := quick.Check(prop, gridQuickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: f2 ⊆ f1, f2 grows with d, and f2 with a huge d equals f1.
func TestPropReplicateF2SubsetMonotone(t *testing.T) {
	p := paperGrid(t)
	for _, m := range []Metric{MetricEuclidean, MetricChebyshev} {
		prop := func(r geom.Rect) bool {
			f1 := p.ReplicateF1(r)
			f2small := p.ReplicateF2(r, 20, m)
			f2big := p.ReplicateF2(r, 60, m)
			f2max := p.ReplicateF2(r, 1000, m)
			if !subset(f2small, f2big) || !subset(f2big, f1) {
				return false
			}
			return reflect.DeepEqual(f2max, f1)
		}
		if err := quick.Check(prop, gridQuickCfg()); err != nil {
			t.Errorf("metric %v: %v", m, err)
		}
	}
}

// Property: every Split cell's rectangle actually overlaps r, and every
// cell not in Split either does not overlap r or lies outside the grid
// clamp region.
func TestPropSplitIsExactlyOverlapping(t *testing.T) {
	p := paperGrid(t)
	prop := func(r geom.Rect) bool {
		inSplit := map[CellID]bool{}
		p.ForEachSplit(r, func(c CellID) { inSplit[c] = true })
		for c := CellID(0); int(c) < p.NumCells(); c++ {
			if p.CellRect(c).Overlaps(r) != inSplit[c] {
				return false
			}
		}
		return true
	}
	// Restrict to in-bounds rectangles: clamping intentionally breaks
	// the equivalence outside the grid.
	rng := rand.New(rand.NewPCG(5, 9))
	cfg := &quick.Config{
		MaxCount: 1500,
		Values: func(vals []reflect.Value, _ *mrand.Rand) {
			r := geom.Rect{
				X: rng.Float64() * 80,
				Y: 20 + rng.Float64()*80,
				L: rng.Float64() * 20,
				B: rng.Float64() * 20,
			}
			vals[0] = reflect.ValueOf(r)
		},
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: CellOf is consistent with CellRect containment up to the
// half-open ownership rule: the owning cell's closed rectangle always
// contains the point (for in-bounds points).
func TestPropCellOfWithinCellRect(t *testing.T) {
	p := paperGrid(t)
	rng := rand.New(rand.NewPCG(17, 23))
	for i := 0; i < 4000; i++ {
		pt := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		c := p.CellOf(pt)
		if !p.CellRect(c).ContainsPoint(pt) {
			t.Fatalf("CellOf(%v) = %d but cell rect %v does not contain it", pt, c, p.CellRect(c))
		}
	}
}

func subset(a, b []CellID) bool {
	set := map[CellID]bool{}
	for _, c := range b {
		set[c] = true
	}
	for _, c := range a {
		if !set[c] {
			return false
		}
	}
	return true
}

func BenchmarkSplit(b *testing.B) {
	p, _ := NewUniform(geom.Rect{X: 0, Y: 100000, L: 100000, B: 100000}, 8, 8)
	rng := rand.New(rand.NewPCG(1, 1))
	rects := make([]geom.Rect, 1024)
	for i := range rects {
		rects[i] = geom.Rect{X: rng.Float64() * 100000, Y: rng.Float64() * 100000, L: rng.Float64() * 100, B: rng.Float64() * 100}
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		p.ForEachSplit(rects[i%1024], func(CellID) { n++ })
	}
	_ = n
}

func BenchmarkReplicateF2(b *testing.B) {
	p, _ := NewUniform(geom.Rect{X: 0, Y: 100000, L: 100000, B: 100000}, 8, 8)
	rng := rand.New(rand.NewPCG(1, 1))
	rects := make([]geom.Rect, 1024)
	for i := range rects {
		rects[i] = geom.Rect{X: rng.Float64() * 100000, Y: rng.Float64() * 100000, L: rng.Float64() * 100, B: rng.Float64() * 100}
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		p.ForEachReplicateF2(rects[i%1024], 300, MetricChebyshev, func(CellID) { n++ })
	}
	_ = n
}
