package grid

import (
	"fmt"
	"math"
	"sort"

	"mwsjoin/internal/geom"
)

// AdaptiveOptions tunes NewAdaptive.
type AdaptiveOptions struct {
	// Target is the desired number of partition-cells (one reducer per
	// cell); ≤ 0 uses the paper's 64-reducer default. The result never
	// has more than Target cells (cold rows/columns are merged away) but
	// may have fewer when the sample cannot support the resolution.
	Target int
	// SplitThreshold scales the per-region sample capacity: a region
	// keeps splitting while it holds more than SplitThreshold ×
	// len(sample)/Target sample start-points. 1.0 (the default, used
	// when ≤ 0) splits hot regions down to an even per-cell share;
	// smaller values split more aggressively before the merge pass.
	SplitThreshold float64
	// MaxDepth bounds the split recursion; ≤ 0 uses 24.
	MaxDepth int
	// Bounds is the space the partitioning covers. Zero-area bounds use
	// the sample's bounding box (degenerate axes are widened by 1, as
	// the uniform default partitioning does).
	Bounds geom.Rect
}

// NewAdaptive builds a skew-aware rectilinear partitioning from a
// sample of the workload's rectangles: a quadtree-style recursion
// splits hot regions at the median start-point coordinates until every
// region holds at most its capacity of sample points, the split
// coordinates are flattened into global column/row cuts (the §4
// definition requires cells to share breadths within a row and lengths
// within a column, so a rectilinear grid is the finest structure that
// keys through the shuffle unchanged), and cold sibling columns/rows
// are merged — lowest combined sample load first — until at most
// Target cells remain. The construction is deterministic in the sample
// order and options.
func NewAdaptive(sample []geom.Rect, opts AdaptiveOptions) (*Partitioning, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("grid: adaptive partitioning needs at least one sample rectangle")
	}
	target := opts.Target
	if target <= 0 {
		target = 64
	}
	thr := opts.SplitThreshold
	if thr <= 0 {
		thr = 1
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 24
	}
	bounds := opts.Bounds
	if bounds.Area() <= 0 {
		bounds = sample[0]
		for _, r := range sample[1:] {
			bounds = bounds.Union(r)
		}
	}
	minX, maxX := bounds.MinX(), bounds.MaxX()
	minY, maxY := bounds.MinY(), bounds.MaxY()
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}

	pts := make([]geom.Point, len(sample))
	for i, r := range sample {
		pts[i] = r.Start()
	}
	capacity := int(math.Ceil(thr * float64(len(pts)) / float64(target)))
	if capacity < 1 {
		capacity = 1
	}

	// Recursive split: a region over its capacity is divided at the
	// median x and median y of its points (each axis only when both
	// sides stay non-empty), and every strictly smaller child recurses.
	var xSplits, ySplits []float64
	var split func(pts []geom.Point, depth int)
	split = func(pts []geom.Point, depth int) {
		if len(pts) <= capacity || depth >= maxDepth {
			return
		}
		mx, okX := medianSplit(pts, func(p geom.Point) float64 { return p.X })
		my, okY := medianSplit(pts, func(p geom.Point) float64 { return p.Y })
		if !okX && !okY {
			return // all points identical on both axes
		}
		if okX {
			xSplits = append(xSplits, mx)
		}
		if okY {
			ySplits = append(ySplits, my)
		}
		var quads [4][]geom.Point
		for _, p := range pts {
			q := 0
			if okX && p.X >= mx {
				q |= 1
			}
			if okY && p.Y >= my {
				q |= 2
			}
			quads[q] = append(quads[q], p)
		}
		for _, child := range quads {
			if len(child) > 0 && len(child) < len(pts) {
				split(child, depth+1)
			}
		}
	}
	split(pts, 0)

	xCuts := flattenCuts(xSplits, minX, maxX)
	yCuts := flattenCuts(ySplits, minY, maxY)

	// Cold-sibling merge: flattening the quadtree multiplies the axes'
	// split counts, so the grid can far exceed the target. Repeatedly
	// merge the adjacent column or row pair with the smallest combined
	// sample load (ties: columns before rows, lowest index) until the
	// cell count fits.
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	colLoad := axisLoads(xCuts, xs)
	rowLoad := axisLoads(yCuts, ys)
	for (len(xCuts)-1)*(len(yCuts)-1) > target {
		axis, at := coldestPair(colLoad, rowLoad)
		if axis < 0 {
			break // 1×1 grid; nothing left to merge
		}
		if axis == 0 {
			colLoad[at] += colLoad[at+1]
			colLoad = append(colLoad[:at+1], colLoad[at+2:]...)
			xCuts = append(xCuts[:at+1], xCuts[at+2:]...)
		} else {
			rowLoad[at] += rowLoad[at+1]
			rowLoad = append(rowLoad[:at+1], rowLoad[at+2:]...)
			yCuts = append(yCuts[:at+1], yCuts[at+2:]...)
		}
	}
	return NewFromCuts(xCuts, yCuts)
}

// medianSplit returns a coordinate that divides the points into two
// non-empty groups (strictly below / at-or-above), or ok=false when
// every point shares the coordinate. The median is preferred; when the
// median equals the minimum (heavy duplication), the smallest larger
// value is used instead.
func medianSplit(pts []geom.Point, coord func(geom.Point) float64) (float64, bool) {
	vs := make([]float64, len(pts))
	for i, p := range pts {
		vs[i] = coord(p)
	}
	sort.Float64s(vs)
	if m := vs[len(vs)/2]; m > vs[0] {
		return m, true
	}
	i := sort.Search(len(vs), func(i int) bool { return vs[i] > vs[0] })
	if i == len(vs) {
		return 0, false
	}
	return vs[i], true
}

// flattenCuts turns the recorded split coordinates into a strictly
// ascending cut slice over [lo, hi]: sorted, de-duplicated, interior
// only.
func flattenCuts(splits []float64, lo, hi float64) []float64 {
	sort.Float64s(splits)
	cuts := []float64{lo}
	for _, v := range splits {
		if v > cuts[len(cuts)-1] && v < hi {
			cuts = append(cuts, v)
		}
	}
	return append(cuts, hi)
}

// axisLoads counts the sample coordinates per cut interval, with the
// half-open ownership the grid uses (a value on a cut belongs to the
// interval on its right) and out-of-bounds values clamped to the edge
// intervals.
func axisLoads(cuts []float64, vs []float64) []int64 {
	loads := make([]int64, len(cuts)-1)
	for _, v := range vs {
		i := sort.SearchFloat64s(cuts, v)
		// SearchFloat64s finds the first cut ≥ v; a value exactly on cut
		// i starts interval i, anything between cuts i and i+1 lands in
		// interval i as well.
		if i == len(cuts) || cuts[i] != v {
			i--
		}
		if i < 0 {
			i = 0
		}
		if i > len(loads)-1 {
			i = len(loads) - 1
		}
		loads[i]++
	}
	return loads
}

// coldestPair finds the adjacent interval pair with the smallest
// combined load across both axes: axis 0 = columns, 1 = rows, and the
// returned index is the left/lower member. axis -1 means neither axis
// has two intervals.
func coldestPair(colLoad, rowLoad []int64) (axis, at int) {
	axis, at = -1, -1
	best := int64(math.MaxInt64)
	for i := 0; i+1 < len(colLoad); i++ {
		if s := colLoad[i] + colLoad[i+1]; s < best {
			axis, at, best = 0, i, s
		}
	}
	for i := 0; i+1 < len(rowLoad); i++ {
		if s := rowLoad[i] + rowLoad[i+1]; s < best {
			axis, at, best = 1, i, s
		}
	}
	return axis, at
}
