package grid

import (
	"fmt"
	"sort"

	"mwsjoin/internal/geom"
)

// NewQuantile builds a rectilinear partitioning whose cut coordinates
// are quantiles of the rectangles' start-points, so each row and each
// column receives roughly the same number of rectangles even under
// heavy spatial skew (road networks, clustered data). This exploits the
// generality the paper's §4 partitioning definition already allows —
// partition-cells need identical sizes only within a row or column —
// and addresses the reducer load-balancing objective of §3.
//
// The outermost cuts come from bounds (or the data's bounding box when
// bounds has zero area). Interior cuts are forced strictly ascending;
// when the data cannot support the requested resolution (e.g. many
// identical coordinates), duplicate quantiles are nudged apart by a
// fraction of the span, keeping the partitioning valid at the cost of
// thin cells.
func NewQuantile(rects []geom.Rect, rows, cols int, bounds geom.Rect) (*Partitioning, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: rows and cols must be positive, got %d×%d", rows, cols)
	}
	if len(rects) == 0 {
		return nil, fmt.Errorf("grid: quantile partitioning needs at least one rectangle")
	}
	if bounds.Area() <= 0 {
		bounds = rects[0]
		for _, r := range rects[1:] {
			bounds = bounds.Union(r)
		}
	}
	if bounds.L <= 0 || bounds.B <= 0 {
		return nil, fmt.Errorf("grid: degenerate bounds %v", bounds)
	}

	xs := make([]float64, len(rects))
	ys := make([]float64, len(rects))
	for i, r := range rects {
		xs[i] = r.X
		ys[i] = r.Y
	}
	sort.Float64s(xs)
	sort.Float64s(ys)

	xCuts, err := quantileCuts(xs, cols, bounds.MinX(), bounds.MaxX())
	if err != nil {
		return nil, err
	}
	yCuts, err := quantileCuts(ys, rows, bounds.MinY(), bounds.MaxY())
	if err != nil {
		return nil, err
	}
	return NewFromCuts(xCuts, yCuts)
}

// quantileCuts derives n+1 strictly ascending cuts over [lo, hi] whose
// interior values are the k/n quantiles of the sorted sample.
func quantileCuts(sorted []float64, n int, lo, hi float64) ([]float64, error) {
	if hi <= lo {
		return nil, fmt.Errorf("grid: empty cut range [%g, %g]", lo, hi)
	}
	cuts := make([]float64, n+1)
	cuts[0] = lo
	cuts[n] = hi
	for k := 1; k < n; k++ {
		q := sorted[(len(sorted)-1)*k/n]
		cuts[k] = clampFloat(q, lo, hi)
	}
	// Force strict ascent: nudge duplicates apart by a sliver of the
	// span, then re-clamp against the upper bound from the right.
	eps := (hi - lo) * 1e-9
	if eps <= 0 {
		eps = 1e-12
	}
	for k := 1; k <= n; k++ {
		if cuts[k] <= cuts[k-1] {
			cuts[k] = cuts[k-1] + eps
		}
	}
	for k := n - 1; k >= 1; k-- {
		if cuts[k] >= cuts[k+1] {
			cuts[k] = cuts[k+1] - eps
		}
	}
	for k := 1; k <= n; k++ {
		if cuts[k] <= cuts[k-1] {
			return nil, fmt.Errorf("grid: cannot derive %d strictly ascending cuts over [%g, %g]", n+1, lo, hi)
		}
	}
	return cuts, nil
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SplitSkew measures reducer load balance for a partitioning over a
// workload: it splits every rectangle and returns the ratio of the most
// loaded cell to the mean cell load (1 = perfectly balanced).
func (p *Partitioning) SplitSkew(rects []geom.Rect) float64 {
	counts := make([]int64, p.NumCells())
	var total int64
	for _, r := range rects {
		p.ForEachSplit(r, func(c CellID) {
			counts[c]++
			total++
		})
	}
	if total == 0 {
		return 0
	}
	var max int64
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(p.NumCells())
	return float64(max) / mean
}
