package pointquery

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"mwsjoin/internal/geom"
	"mwsjoin/internal/grid"
	"mwsjoin/internal/spatial"
)

func testGrid(t testing.TB, n int, space float64) *grid.Partitioning {
	t.Helper()
	p, err := grid.NewUniform(geom.Rect{X: 0, Y: space, L: space, B: space}, n, n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randPoints(n int, rng *rand.Rand, space float64) PointSet {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * space, Y: rng.Float64() * space}
	}
	return PointSet{Name: "pts", Pts: pts}
}

func randRects(n int, rng *rand.Rand, space, maxDim float64) spatial.Relation {
	rects := make([]geom.Rect, n)
	for i := range rects {
		rects[i] = geom.Rect{
			X: rng.Float64() * space,
			Y: rng.Float64() * space,
			L: rng.Float64() * maxDim,
			B: rng.Float64() * maxDim,
		}
	}
	return spatial.NewRelation("rects", rects)
}

func pairSet(pairs []ContainmentPair) map[ContainmentPair]bool {
	set := make(map[ContainmentPair]bool, len(pairs))
	for _, p := range pairs {
		if set[p] {
			panic("duplicate containment pair")
		}
		set[p] = true
	}
	return set
}

func TestContainmentAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 1))
	part := testGrid(t, 4, 1000)
	for trial := 0; trial < 5; trial++ {
		points := randPoints(300, rng, 1000)
		rects := randRects(200, rng, 1000, 120)
		got, stats, err := Containment(points, rects, part, Config{})
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForceContainment(points, rects)
		if !reflect.DeepEqual(pairSet(got), pairSet(want)) {
			t.Fatalf("trial %d: got %d pairs, want %d", trial, len(got), len(want))
		}
		if stats.IntermediatePairs() == 0 {
			t.Error("no pairs shuffled?")
		}
	}
}

func TestContainmentBoundaryPoints(t *testing.T) {
	part := testGrid(t, 2, 100)
	rects := spatial.NewRelation("r", []geom.Rect{{X: 10, Y: 90, L: 10, B: 10}})
	points := PointSet{Pts: []geom.Point{
		{X: 10, Y: 90}, // corner
		{X: 20, Y: 80}, // opposite corner
		{X: 15, Y: 85}, // interior
		{X: 25, Y: 85}, // outside
		{X: 50, Y: 50}, // on a grid cut, outside the rect
	}}
	got, _, err := Containment(points, rects, part, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []ContainmentPair{{0, 0}, {1, 0}, {2, 0}}
	if !reflect.DeepEqual(pairSet(got), pairSet(want)) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestContainmentValidation(t *testing.T) {
	if _, _, err := Containment(PointSet{}, spatial.Relation{}, nil, Config{}); err == nil {
		t.Error("nil partitioning must fail")
	}
}

func knnEqual(t *testing.T, got, want []KNNResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("result %d: ID %d vs %d", i, got[i].ID, want[i].ID)
		}
		g, w := got[i].Neighbors, want[i].Neighbors
		if len(g) != len(w) {
			t.Fatalf("point %d: %d neighbours, want %d", got[i].ID, len(g), len(w))
		}
		for j := range g {
			// Distances must agree exactly; IDs may differ only on
			// exact distance ties (the orders are both deterministic,
			// so require full equality).
			if g[j] != w[j] {
				t.Fatalf("point %d neighbour %d: %+v vs %+v", got[i].ID, j, g[j], w[j])
			}
		}
	}
}

func TestKNNJoinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 2))
	part := testGrid(t, 4, 1000)
	for _, k := range []int{1, 3, 10} {
		outer := randPoints(150, rng, 1000)
		inner := randPoints(400, rng, 1000)
		got, stats, err := KNNJoin(outer, inner, k, part, Config{})
		if err != nil {
			t.Fatal(err)
		}
		knnEqual(t, got, BruteForceKNN(outer, inner, k))
		if len(stats.Rounds) != 3 {
			t.Errorf("k=%d: %d rounds, want 3", k, len(stats.Rounds))
		}
	}
}

func TestKNNJoinSparseInner(t *testing.T) {
	// Fewer inner points than k: every outer point gets all of them,
	// via the unbounded-radius path.
	rng := rand.New(rand.NewPCG(63, 3))
	part := testGrid(t, 4, 1000)
	outer := randPoints(50, rng, 1000)
	inner := randPoints(3, rng, 1000)
	got, _, err := KNNJoin(outer, inner, 8, part, Config{})
	if err != nil {
		t.Fatal(err)
	}
	knnEqual(t, got, BruteForceKNN(outer, inner, 8))
	for _, r := range got {
		if len(r.Neighbors) != 3 {
			t.Fatalf("point %d: %d neighbours, want all 3", r.ID, len(r.Neighbors))
		}
	}
}

func TestKNNJoinClusteredSkew(t *testing.T) {
	// Outer points far from the inner cluster must still find their
	// true neighbours (exercises cross-cell radius expansion).
	part := testGrid(t, 4, 1000)
	outer := PointSet{Pts: []geom.Point{{X: 10, Y: 10}, {X: 990, Y: 990}, {X: 500, Y: 10}}}
	var inner PointSet
	rng := rand.New(rand.NewPCG(64, 4))
	for i := 0; i < 200; i++ {
		inner.Pts = append(inner.Pts, geom.Point{X: 480 + rng.Float64()*40, Y: 480 + rng.Float64()*40})
	}
	got, _, err := KNNJoin(outer, inner, 5, part, Config{})
	if err != nil {
		t.Fatal(err)
	}
	knnEqual(t, got, BruteForceKNN(outer, inner, 5))
}

func TestKNNJoinValidation(t *testing.T) {
	part := testGrid(t, 2, 100)
	if _, _, err := KNNJoin(PointSet{}, PointSet{}, 0, part, Config{}); err == nil {
		t.Error("k=0 must fail")
	}
	if _, _, err := KNNJoin(PointSet{}, PointSet{}, 1, nil, Config{}); err == nil {
		t.Error("nil partitioning must fail")
	}
	// Empty outer: empty result, no error.
	got, _, err := KNNJoin(PointSet{}, randPoints(5, rand.New(rand.NewPCG(1, 1)), 100), 2, part, Config{})
	if err != nil || len(got) != 0 {
		t.Errorf("empty outer: %v, %v", got, err)
	}
}

func TestBruteForceKNNDeterministicTies(t *testing.T) {
	// Equidistant neighbours break ties by ID.
	outer := PointSet{Pts: []geom.Point{{X: 0, Y: 0}}}
	inner := PointSet{Pts: []geom.Point{{X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}}}
	got := BruteForceKNN(outer, inner, 2)
	if got[0].Neighbors[0].ID != 0 || got[0].Neighbors[1].ID != 1 {
		t.Errorf("tie break wrong: %+v", got[0].Neighbors)
	}
	sorted := sort.SliceIsSorted(got[0].Neighbors, func(a, b int) bool {
		return got[0].Neighbors[a].ID < got[0].Neighbors[b].ID
	})
	if !sorted {
		t.Error("expected ID order on full tie")
	}
}
