// Package pointquery implements the additional spatial query classes
// the paper names as future work (§10) and that the related 2-way
// systems it cites support (§3): containment queries and k-nearest-
// neighbour joins — on the same partitioned map-reduce substrate as the
// multi-way joins (a grid of partition-cells with one reducer per
// cell).
//
// Containment finds, for a point dataset and a rectangle relation,
// every (point, rectangle) pair with the point inside the closed
// rectangle. It runs as a single job: points are projected to their
// owning cell, rectangles are split, and each reducer probes a local
// rectangle index per point. The ownership rule makes the output
// duplicate-free by construction.
//
// KNNJoin finds, for every point of the outer set, its k nearest
// points of the inner set. It runs as three jobs, the grid analogue of
// Lu et al.'s map-reduce kNN join [13]:
//
//  1. local candidates: both point sets are projected; each reducer
//     computes, per outer point, the distance to its k-th nearest
//     co-located inner point — an upper bound on the true k-th
//     neighbour distance (∞ when the cell holds fewer than k inner
//     points);
//  2. bounded replication: each outer point is replicated to every
//     cell within its bound (all cells when unbounded), inner points
//     are projected; reducers emit each cell's local top-k candidates
//     per outer point;
//  3. merge: candidates are grouped by outer point and the global
//     top-k is selected, with deterministic distance-then-ID ordering.
package pointquery

import (
	"fmt"
	"sort"

	"mwsjoin/internal/geom"
	"mwsjoin/internal/grid"
	"mwsjoin/internal/index"
	"mwsjoin/internal/mapreduce"
	"mwsjoin/internal/spatial"
)

// PointSet is a named dataset of points.
type PointSet struct {
	Name string
	Pts  []geom.Point
}

// Config tunes a point query execution.
type Config struct {
	// Parallelism bounds concurrent map/reduce tasks.
	Parallelism int
}

// Stats aggregates per-job engine statistics.
type Stats struct {
	Rounds []*mapreduce.Stats
}

// IntermediatePairs sums the shuffled key-value pairs over all rounds.
func (s *Stats) IntermediatePairs() int64 {
	var n int64
	for _, r := range s.Rounds {
		n += r.IntermediatePairs
	}
	return n
}

// ContainmentPair reports that rectangle RectID contains point PointID.
type ContainmentPair struct {
	PointID int32
	RectID  int32
}

// pointRec is a point tagged with its ID flowing through jobs.
type pointRec struct {
	ID int32
	P  geom.Point
}

// containRec is the value union of the containment job.
type containRec struct {
	isPoint bool
	pt      pointRec
	rectID  int32
	rect    geom.Rect
}

// Containment finds all (point, rectangle) containment pairs. Results
// are in deterministic cell-then-input order.
func Containment(points PointSet, rects spatial.Relation, part *grid.Partitioning, cfg Config) ([]ContainmentPair, *Stats, error) {
	if part == nil {
		return nil, nil, fmt.Errorf("pointquery: nil partitioning")
	}
	input := make([]containRec, 0, len(points.Pts)+len(rects.Items))
	for i, p := range points.Pts {
		input = append(input, containRec{isPoint: true, pt: pointRec{ID: int32(i), P: p}})
	}
	for _, it := range rects.Items {
		input = append(input, containRec{rectID: it.ID, rect: it.R})
	}

	job := &mapreduce.Job[containRec, grid.CellID, containRec, ContainmentPair]{
		Config: mapreduce.Config{Name: "containment", NumReducers: part.NumCells(), Parallelism: cfg.Parallelism},
		Map: func(rec containRec, emit func(grid.CellID, containRec)) error {
			if rec.isPoint {
				emit(part.CellOf(rec.pt.P), rec)
			} else {
				part.ForEachSplit(rec.rect, func(c grid.CellID) { emit(c, rec) })
			}
			return nil
		},
		Partition: mapreduce.IdentityPartition[grid.CellID],
		Reduce: func(c grid.CellID, recs []containRec, emit func(ContainmentPair)) error {
			var pts []pointRec
			var ids []int32
			var rs []geom.Rect
			for _, rec := range recs {
				if rec.isPoint {
					pts = append(pts, rec.pt)
				} else {
					ids = append(ids, rec.rectID)
					rs = append(rs, rec.rect)
				}
			}
			if len(pts) == 0 || len(rs) == 0 {
				return nil
			}
			ix := newIndex(rs)
			for _, p := range pts {
				probe := geom.Rect{X: p.P.X, Y: p.P.Y}
				ix.Probe(probe, 0, func(j int) bool {
					if rs[j].ContainsPoint(p.P) {
						emit(ContainmentPair{PointID: p.ID, RectID: ids[j]})
					}
					return true
				})
			}
			return nil
		},
	}
	pairs, st, err := job.Run(input)
	if err != nil {
		return nil, nil, err
	}
	return pairs, &Stats{Rounds: []*mapreduce.Stats{st}}, nil
}

// Neighbor is one kNN candidate: the inner point's ID and its distance.
type Neighbor struct {
	ID   int32
	Dist float64
}

// KNNResult is the k nearest inner points of one outer point, sorted by
// ascending distance (ties by ID).
type KNNResult struct {
	ID        int32
	Neighbors []Neighbor
}

// unbounded marks a round-one radius that could not be bounded locally.
const unbounded = -1

// boundRec carries an outer point and its round-one radius bound.
type boundRec struct {
	pt     pointRec
	radius float64
}

// candRec is the value union of round two; outer carries the bound.
type candRec struct {
	isOuter bool
	outer   boundRec
	inner   pointRec
}

// KNNJoin computes, for every point of outer, its k nearest points of
// inner. Results are sorted by outer point ID; every outer point
// appears, with fewer than k neighbours only when inner has fewer than
// k points.
func KNNJoin(outer, inner PointSet, k int, part *grid.Partitioning, cfg Config) ([]KNNResult, *Stats, error) {
	if part == nil {
		return nil, nil, fmt.Errorf("pointquery: nil partitioning")
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("pointquery: k must be positive, got %d", k)
	}
	stats := &Stats{}

	// ---- round one: local radius bounds ----
	type r1in struct {
		isOuter bool
		pt      pointRec
	}
	input := make([]r1in, 0, len(outer.Pts)+len(inner.Pts))
	for i, p := range outer.Pts {
		input = append(input, r1in{isOuter: true, pt: pointRec{ID: int32(i), P: p}})
	}
	for i, p := range inner.Pts {
		input = append(input, r1in{pt: pointRec{ID: int32(i), P: p}})
	}
	round1 := &mapreduce.Job[r1in, grid.CellID, r1in, boundRec]{
		Config: mapreduce.Config{Name: "knn-bound", NumReducers: part.NumCells(), Parallelism: cfg.Parallelism},
		Map: func(rec r1in, emit func(grid.CellID, r1in)) error {
			emit(part.CellOf(rec.pt.P), rec)
			return nil
		},
		Partition: mapreduce.IdentityPartition[grid.CellID],
		Reduce: func(c grid.CellID, recs []r1in, emit func(boundRec)) error {
			var outs, ins []pointRec
			for _, rec := range recs {
				if rec.isOuter {
					outs = append(outs, rec.pt)
				} else {
					ins = append(ins, rec.pt)
				}
			}
			for _, o := range outs {
				if len(ins) < k {
					emit(boundRec{pt: o, radius: unbounded})
					continue
				}
				dists := make([]float64, len(ins))
				for i, in := range ins {
					dists[i] = o.P.Dist(in.P)
				}
				sort.Float64s(dists)
				emit(boundRec{pt: o, radius: dists[k-1]})
			}
			return nil
		},
	}
	bounds, st1, err := round1.Run(input)
	if err != nil {
		return nil, nil, err
	}
	stats.Rounds = append(stats.Rounds, st1)

	// ---- round two: bounded replication, local top-k ----
	type cand struct {
		OuterID int32
		N       Neighbor
	}
	r2input := make([]candRec, 0, len(bounds)+len(inner.Pts))
	for _, b := range bounds {
		r2input = append(r2input, candRec{isOuter: true, outer: b})
	}
	for i, p := range inner.Pts {
		r2input = append(r2input, candRec{inner: pointRec{ID: int32(i), P: p}})
	}
	round2 := &mapreduce.Job[candRec, grid.CellID, candRec, cand]{
		Config: mapreduce.Config{Name: "knn-candidates", NumReducers: part.NumCells(), Parallelism: cfg.Parallelism},
		Map: func(rec candRec, emit func(grid.CellID, candRec)) error {
			if !rec.isOuter {
				emit(part.CellOf(rec.inner.P), rec)
				return nil
			}
			if rec.outer.radius == unbounded {
				for c := grid.CellID(0); int(c) < part.NumCells(); c++ {
					emit(c, rec)
				}
				return nil
			}
			// All cells whose region comes within the radius bound.
			probe := geom.Rect{X: rec.outer.pt.P.X, Y: rec.outer.pt.P.Y}
			part.ForEachSplit(probe.Enlarge(rec.outer.radius), func(c grid.CellID) {
				if part.CellRect(c).DistToPoint(rec.outer.pt.P) <= rec.outer.radius {
					emit(c, rec)
				}
			})
			return nil
		},
		Partition: mapreduce.IdentityPartition[grid.CellID],
		Reduce: func(c grid.CellID, recs []candRec, emit func(cand)) error {
			var outs []boundRec
			var ins []pointRec
			for _, rec := range recs {
				if rec.isOuter {
					outs = append(outs, rec.outer)
				} else {
					ins = append(ins, rec.inner)
				}
			}
			if len(outs) == 0 || len(ins) == 0 {
				return nil
			}
			for _, o := range outs {
				local := make([]Neighbor, 0, len(ins))
				for _, in := range ins {
					d := o.pt.P.Dist(in.P)
					if o.radius == unbounded || d <= o.radius {
						local = append(local, Neighbor{ID: in.ID, Dist: d})
					}
				}
				sortNeighbors(local)
				if len(local) > k {
					local = local[:k]
				}
				for _, n := range local {
					emit(cand{OuterID: o.pt.ID, N: n})
				}
			}
			return nil
		},
	}
	cands, st2, err := round2.Run(r2input)
	if err != nil {
		return nil, nil, err
	}
	stats.Rounds = append(stats.Rounds, st2)

	// ---- round three: merge per outer point ----
	round3 := &mapreduce.Job[cand, int32, Neighbor, KNNResult]{
		Config: mapreduce.Config{Name: "knn-merge", NumReducers: min(part.NumCells(), 16), Parallelism: cfg.Parallelism},
		Map: func(c cand, emit func(int32, Neighbor)) error {
			emit(c.OuterID, c.N)
			return nil
		},
		// Map-side top-k: any neighbour in the global top-k has fewer
		// than k neighbours ahead of it in the (Dist, ID) order, so it
		// survives the top-k of its own mapper run — truncating each run
		// to k before the shuffle cannot evict a final answer. The
		// reduce re-sorts and re-truncates the merged runs regardless,
		// so results are bit-identical; only shuffled pairs shrink.
		Combine: func(_ int32, ns []Neighbor) []Neighbor {
			sortNeighbors(ns)
			if len(ns) > k {
				ns = ns[:k]
			}
			return ns
		},
		Reduce: func(id int32, ns []Neighbor, emit func(KNNResult)) error {
			sortNeighbors(ns)
			// A neighbour can arrive from several cells (an inner point
			// is projected once, but an outer point may meet it in one
			// cell only — duplicates cannot happen; keep a guard anyway
			// for clarity of intent).
			dedup := ns[:0]
			var last Neighbor
			for i, n := range ns {
				if i > 0 && n == last {
					continue
				}
				dedup = append(dedup, n)
				last = n
			}
			if len(dedup) > k {
				dedup = dedup[:k]
			}
			emit(KNNResult{ID: id, Neighbors: append([]Neighbor(nil), dedup...)})
			return nil
		},
	}
	results, st3, err := round3.Run(cands)
	if err != nil {
		return nil, nil, err
	}
	stats.Rounds = append(stats.Rounds, st3)

	sort.Slice(results, func(a, b int) bool { return results[a].ID < results[b].ID })
	return results, stats, nil
}

// sortNeighbors orders by ascending distance, ties by ID, for
// deterministic results.
func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(a, b int) bool {
		if ns[a].Dist != ns[b].Dist {
			return ns[a].Dist < ns[b].Dist
		}
		return ns[a].ID < ns[b].ID
	})
}

// newIndex builds the reducer-local rectangle index used by
// Containment: a linear scan below the indexing threshold, the bucket
// grid above it.
func newIndex(rs []geom.Rect) index.Index {
	if len(rs) < 16 {
		return index.NewLinear(rs)
	}
	return index.NewGrid(rs)
}

// BruteForceKNN is the reference kNN join used by tests and tiny
// inputs.
func BruteForceKNN(outer, inner PointSet, k int) []KNNResult {
	results := make([]KNNResult, len(outer.Pts))
	for i, o := range outer.Pts {
		ns := make([]Neighbor, len(inner.Pts))
		for j, in := range inner.Pts {
			ns[j] = Neighbor{ID: int32(j), Dist: o.Dist(in)}
		}
		sortNeighbors(ns)
		if len(ns) > k {
			ns = ns[:k]
		}
		results[i] = KNNResult{ID: int32(i), Neighbors: append([]Neighbor(nil), ns...)}
	}
	return results
}

// BruteForceContainment is the reference containment query.
func BruteForceContainment(points PointSet, rects spatial.Relation) []ContainmentPair {
	var out []ContainmentPair
	for i, p := range points.Pts {
		for _, it := range rects.Items {
			if it.R.ContainsPoint(p) {
				out = append(out, ContainmentPair{PointID: int32(i), RectID: it.ID})
			}
		}
	}
	return out
}
