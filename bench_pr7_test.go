package mwsjoin

// BENCH_PR7.json is the committed profiling-overhead anchor: on the
// 1M-pair shuffle-heavy engine job (the BenchmarkShuffleHeavy1M
// regime: 64 reducers, 8-way parallelism, ~2^20 key space, PairBytes
// set), running with full profiling — a span tracer on the job plus the
// Chrome trace export of the recorded spans — must cost at most 5% wall
// time over the identical untraced run. TestBenchPR7Anchor guards the
// committed numbers and re-measures a reduced-scale live run with a
// lenient bound; regenerate the full-scale anchor with:
//
//	MWSJ_WRITE_BENCH_PR7=1 go test -run TestBenchPR7Anchor .

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"testing"
	"time"

	"mwsjoin/internal/mapreduce"
	"mwsjoin/internal/trace"
)

// pr7Anchor is the committed measurement record.
type pr7Anchor struct {
	Records     int     `json:"records"`
	Pairs       int64   `json:"pairs"`
	Reps        int     `json:"reps"`
	Regenerate  string  `json:"regenerate"`
	PlainNS     int64   `json:"plain_ns"`
	ProfiledNS  int64   `json:"profiled_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

// pr7Job builds the shuffle-heavy aggregation job of the 1M-pair bench:
// every record emits 8 pairs over a ~keyspace-sized key domain, with
// PairBytes charged so the shuffle accounting runs too.
func pr7Job(tr *trace.Tracer) *mapreduce.Job[int64, int64, int64, int64] {
	const keyspace = 1 << 20
	return &mapreduce.Job[int64, int64, int64, int64]{
		Config: mapreduce.Config{
			Name: "pr7-bench", NumReducers: 64, NumMappers: 8, Parallelism: 8,
			Tracer: tr,
		},
		Map: func(x int64, emit func(int64, int64)) error {
			for s := int64(0); s < 8; s++ {
				k := (x*2654435761 + s*40503) % keyspace
				if k < 0 {
					k += keyspace
				}
				emit(k, x)
			}
			return nil
		},
		Partition: func(k int64, n int) int { return int(k % int64(n)) },
		Reduce: func(k int64, vs []int64, emit func(int64)) error {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			emit(sum)
			return nil
		},
		PairBytes: func(k, v int64) int { return 16 },
	}
}

// runPlain and runProfiled execute one timed run of the job; profiled
// attaches a tracer and exports its spans as a Chrome trace (to
// io.Discard) inside the timed window, so the anchor charges the full
// profiling path, not just the in-flight span recording.
func runPlain(input []int64) (time.Duration, int64, error) {
	start := time.Now()
	_, stats, err := pr7Job(nil).Run(input)
	return time.Since(start), stats.IntermediatePairs, err
}

func runProfiled(input []int64) (time.Duration, int64, error) {
	tr := trace.New()
	start := time.Now()
	_, stats, err := pr7Job(tr).Run(input)
	if err == nil {
		err = WriteChromeTrace(io.Discard, tr.Spans())
	}
	return time.Since(start), stats.IntermediatePairs, err
}

// measurePR7 estimates profiling overhead with a paired design: each
// rep runs both modes back to back (order alternating per rep) so
// machine noise — which on a shared box drifts over windows longer than
// the whole measurement — hits both sides of a ratio equally, and the
// reported overhead is the median of the per-rep ratios rather than a
// min-vs-min of timings taken in different noise regimes.
func measurePR7(records, reps int) (pr7Anchor, error) {
	a := pr7Anchor{Records: records, Reps: reps,
		Regenerate: "MWSJ_WRITE_BENCH_PR7=1 go test -run TestBenchPR7Anchor ."}
	input := make([]int64, records)
	for i := range input {
		input[i] = int64(i)
	}
	// One discarded warmup so page faults and runtime growth don't land
	// on whichever mode happens to run first.
	if _, _, err := pr7Job(nil).Run(input); err != nil {
		return a, err
	}
	ratios := make([]float64, 0, reps)
	var plains, profs []time.Duration
	for rep := 0; rep < reps; rep++ {
		var plain, profiled time.Duration
		var pairs, ppairs int64
		var err error
		if rep%2 == 0 {
			plain, pairs, err = runPlain(input)
			if err == nil {
				profiled, ppairs, err = runProfiled(input)
			}
		} else {
			profiled, ppairs, err = runProfiled(input)
			if err == nil {
				plain, pairs, err = runPlain(input)
			}
		}
		if err != nil {
			return a, err
		}
		if pairs != ppairs {
			return a, fmt.Errorf("profiling changed the pair count: %d vs %d", pairs, ppairs)
		}
		a.Pairs = pairs
		ratios = append(ratios, float64(profiled)/float64(plain))
		plains = append(plains, plain)
		profs = append(profs, profiled)
	}
	sort.Float64s(ratios)
	sort.Slice(plains, func(i, j int) bool { return plains[i] < plains[j] })
	sort.Slice(profs, func(i, j int) bool { return profs[i] < profs[j] })
	a.PlainNS = plains[len(plains)/2].Nanoseconds()
	a.ProfiledNS = profs[len(profs)/2].Nanoseconds()
	a.OverheadPct = 100 * (ratios[len(ratios)/2] - 1)
	return a, nil
}

// TestBenchPR7Anchor regenerates the anchor when MWSJ_WRITE_BENCH_PR7
// is set (at the full 1M-pair scale); otherwise it re-measures the
// overhead at a reduced scale with a lenient bound — wall-clock under a
// loaded CI box is noisy — and checks the committed full-scale record
// clears the 5% acceptance bar.
func TestBenchPR7Anchor(t *testing.T) {
	const anchorFile = "BENCH_PR7.json"
	if os.Getenv("MWSJ_WRITE_BENCH_PR7") != "" {
		a, err := measurePR7(1<<17, 21) // 8 pairs/record -> 1,048,576 pairs
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(a, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(anchorFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: plain %v, profiled %v, overhead %.2f%%",
			anchorFile, time.Duration(a.PlainNS), time.Duration(a.ProfiledNS), a.OverheadPct)
		return
	}

	// Live reduced-scale measurement: the tracer records the same span
	// count regardless of record volume, so relative overhead shrinks
	// with scale — the lenient 75% bound at 1/8 scale catches only a
	// profiling hot path gone quadratic or per-pair.
	live, err := measurePR7(1<<14, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("live %d records (%d pairs): plain %v, profiled %v, overhead %.2f%%",
		live.Records, live.Pairs, time.Duration(live.PlainNS), time.Duration(live.ProfiledNS), live.OverheadPct)
	if live.OverheadPct > 75 {
		t.Errorf("live profiling overhead %.2f%% > 75%%", live.OverheadPct)
	}
	if live.Pairs != int64(live.Records)*8 {
		t.Errorf("live run shuffled %d pairs, want %d", live.Pairs, int64(live.Records)*8)
	}

	// Committed full-scale anchor.
	raw, err := os.ReadFile(anchorFile)
	if err != nil {
		t.Fatalf("missing committed anchor (regenerate with %q): %v",
			"MWSJ_WRITE_BENCH_PR7=1 go test -run TestBenchPR7Anchor .", err)
	}
	var a pr7Anchor
	if err := json.Unmarshal(raw, &a); err != nil {
		t.Fatalf("%s: %v", anchorFile, err)
	}
	if a.Pairs < 1<<20 {
		t.Errorf("committed anchor shuffled %d pairs, want >= 1048576", a.Pairs)
	}
	if a.OverheadPct > 5 {
		t.Errorf("committed profiling overhead %.2f%% > 5%% acceptance bar", a.OverheadPct)
	}
	if a.PlainNS <= 0 || a.ProfiledNS <= 0 {
		t.Errorf("committed anchor has degenerate timings: %+v", a)
	}
}
