// Roadnetwork runs the paper's California-road star queries (§7.8.6,
// §8.1) on the synthetic road stand-in: find road triples
// (rd1, rd2, rd3) where consecutive roads overlap (Q2s) or lie within
// distance d (Q3s), comparing Controlled-Replicate against
// Controlled-Replicate-in-Limit.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"mwsjoin"
)

func main() {
	if err := run(os.Stdout, 30_000); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, nRoads int) error {
	roads := mwsjoin.CaliforniaRoadsRelation("roads", nRoads, 2013)
	fmt.Fprintf(w, "synthetic California roads: %d MBBs\n\n", len(roads.Items))

	// Self-join: three query slots bound to the same dataset. Tuples
	// bind distinct roads to the slots by default.
	rels := []mwsjoin.Relation{roads, roads, roads}

	queries := []string{
		"rd1 ov rd2 and rd2 ov rd3",         // Q2s
		"rd1 ra(15) rd2 and rd2 ra(15) rd3", // Q3s, d = 15
		"rd1 ov rd2 and rd2 ra(20) rd3",     // Q4s, hybrid
	}
	for _, text := range queries {
		q, err := mwsjoin.ParseQuery(text)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "query: %s\n", text)
		for _, m := range []mwsjoin.Method{mwsjoin.ControlledReplicate, mwsjoin.ControlledReplicateLimit} {
			res, err := mwsjoin.Run(q, rels, m, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-8s %8v  triples=%-8d marked=%-6d copies shipped=%d\n",
				m, res.Stats.Wall.Round(1e6), len(res.Tuples),
				res.Stats.RectanglesReplicated, res.Stats.RectanglesAfterReplication)
		}
		fmt.Fprintln(w)
	}
	return nil
}
