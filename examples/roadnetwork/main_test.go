package main

import (
	"strings"
	"testing"
)

// TestRoadnetwork runs the three star queries on a small road set.
func TestRoadnetwork(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 1500); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"synthetic California roads: 1500 MBBs",
		"query: rd1 ov rd2 and rd2 ov rd3",
		"query: rd1 ra(15) rd2 and rd2 ra(15) rd3",
		"query: rd1 ov rd2 and rd2 ra(20) rd3",
		"c-rep-l",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
