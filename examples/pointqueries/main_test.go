package main

import (
	"strings"
	"testing"
)

// TestPointqueries runs both point-query classes on a small workload.
func TestPointqueries(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 300, 80, 120); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"containment: 300 facilities × 80 regions",
		"knn join:    120 houses × 300 facilities, k=3 → 120 result rows",
		"nearest facilities",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
