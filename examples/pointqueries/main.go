// Pointqueries demonstrates the spatial query classes the paper lists
// as future work (§10), running on the same simulated map-reduce
// cluster as the multi-way joins: a containment query (which points
// fall inside which regions) and a k-nearest-neighbour join.
//
//	go run ./examples/pointqueries
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"mwsjoin"
)

func main() {
	rng := rand.New(rand.NewPCG(2013, 1))

	// Facilities (points) and service regions (rectangles).
	var facilities mwsjoin.PointSet
	facilities.Name = "facility"
	for i := 0; i < 5000; i++ {
		facilities.Pts = append(facilities.Pts, mwsjoin.Point{
			X: rng.Float64() * 10_000,
			Y: rng.Float64() * 10_000,
		})
	}
	var regionRects []mwsjoin.Rect
	for i := 0; i < 800; i++ {
		regionRects = append(regionRects, mwsjoin.Rect{
			X: rng.Float64() * 10_000,
			Y: rng.Float64() * 10_000,
			L: 50 + rng.Float64()*400,
			B: 50 + rng.Float64()*400,
		})
	}
	regions := mwsjoin.NewRelation("region", regionRects)

	pairs, err := mwsjoin.Containment(facilities, regions, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("containment: %d facilities × %d regions → %d (facility, region) pairs\n",
		len(facilities.Pts), len(regions.Items), len(pairs))

	// kNN join: for every house, the 3 nearest facilities.
	var houses mwsjoin.PointSet
	houses.Name = "house"
	for i := 0; i < 2000; i++ {
		houses.Pts = append(houses.Pts, mwsjoin.Point{
			X: rng.Float64() * 10_000,
			Y: rng.Float64() * 10_000,
		})
	}
	results, err := mwsjoin.KNNJoin(houses, facilities, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knn join:    %d houses × %d facilities, k=3 → %d result rows\n",
		len(houses.Pts), len(facilities.Pts), len(results))
	r := results[0]
	fmt.Printf("  e.g. house %d: nearest facilities", r.ID)
	for _, n := range r.Neighbors {
		fmt.Printf(" #%d (%.1f away)", n.ID, n.Dist)
	}
	fmt.Println()
}
