// Pointqueries demonstrates the spatial query classes the paper lists
// as future work (§10), running on the same simulated map-reduce
// cluster as the multi-way joins: a containment query (which points
// fall inside which regions) and a k-nearest-neighbour join.
//
//	go run ./examples/pointqueries
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"os"

	"mwsjoin"
)

func main() {
	if err := run(os.Stdout, 5000, 800, 2000); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, nFacilities, nRegions, nHouses int) error {
	rng := rand.New(rand.NewPCG(2013, 1))

	// Facilities (points) and service regions (rectangles).
	var facilities mwsjoin.PointSet
	facilities.Name = "facility"
	for i := 0; i < nFacilities; i++ {
		facilities.Pts = append(facilities.Pts, mwsjoin.Point{
			X: rng.Float64() * 10_000,
			Y: rng.Float64() * 10_000,
		})
	}
	var regionRects []mwsjoin.Rect
	for i := 0; i < nRegions; i++ {
		regionRects = append(regionRects, mwsjoin.Rect{
			X: rng.Float64() * 10_000,
			Y: rng.Float64() * 10_000,
			L: 50 + rng.Float64()*400,
			B: 50 + rng.Float64()*400,
		})
	}
	regions := mwsjoin.NewRelation("region", regionRects)

	pairs, err := mwsjoin.Containment(facilities, regions, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "containment: %d facilities × %d regions → %d (facility, region) pairs\n",
		len(facilities.Pts), len(regions.Items), len(pairs))

	// kNN join: for every house, the 3 nearest facilities.
	var houses mwsjoin.PointSet
	houses.Name = "house"
	for i := 0; i < nHouses; i++ {
		houses.Pts = append(houses.Pts, mwsjoin.Point{
			X: rng.Float64() * 10_000,
			Y: rng.Float64() * 10_000,
		})
	}
	results, err := mwsjoin.KNNJoin(houses, facilities, 3, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "knn join:    %d houses × %d facilities, k=3 → %d result rows\n",
		len(houses.Pts), len(facilities.Pts), len(results))
	if len(results) == 0 {
		return fmt.Errorf("knn join returned no rows")
	}
	r := results[0]
	fmt.Fprintf(w, "  e.g. house %d: nearest facilities", r.ID)
	for _, n := range r.Neighbors {
		fmt.Fprintf(w, " #%d (%.1f away)", n.ID, n.Dist)
	}
	fmt.Fprintln(w)
	return nil
}
