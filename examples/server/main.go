// Server walkthrough: boot the multi-query join service in-process,
// drive its HTTP JSON API end to end — register relations, submit a
// query, poll its chain progress, page through the result — and show
// the result cache answering a repeated submission without running a
// single map-reduce job.
//
//	go run ./examples/server
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"mwsjoin"

	"mwsjoin/internal/metrics"
	"mwsjoin/internal/server"
)

func main() {
	if err := run(os.Stdout, 800); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, n int) error {
	// The service: 2 workers, default cache, the paper's 64-reducer grid.
	reg := metrics.NewRegistry()
	svc := server.New(server.Config{Workers: 2, Reducers: 64, Metrics: reg})

	// Serve the JSON API (plus /metrics) on a loopback port with a
	// graceful drain, exactly as the mwsjoind daemon does.
	addr, shutdown, err := metrics.ListenAndServeHandler("127.0.0.1:0", server.NewHandler(svc, reg), 5*time.Second)
	if err != nil {
		return err
	}
	defer shutdown() //nolint:errcheck // best-effort on exit
	base := "http://" + addr
	fmt.Fprintf(w, "service listening on %s\n", base)

	// Register three synthetic relations; the fingerprint identifies the
	// dataset content and keys the result cache. The space is much
	// denser than the paper's defaults so the 3-way chain join has
	// output to page through at walkthrough scale.
	params := mwsjoin.SyntheticParams{
		N:    n,
		XMin: 0, XMax: 4000,
		YMin: 0, YMax: 4000,
		LMin: 50, LMax: 250,
		BMin: 50, BMax: 250,
	}
	for i, name := range []string{"cities", "forests", "rivers"} {
		rel, err := mwsjoin.SyntheticRelation(name, params, uint64(i+1))
		if err != nil {
			return err
		}
		info := svc.RegisterRelation(rel)
		fmt.Fprintf(w, "registered %-8s %5d records  fingerprint %s\n", info.Name, info.Records, info.Fingerprint)
	}

	// Submit the paper's Q2 chain query over HTTP.
	submit := func() (server.JobStatus, error) {
		body, _ := json.Marshal(server.SubmitRequest{
			Query:  "cities ov forests and forests ov rivers",
			Method: "c-rep-l",
		})
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return server.JobStatus{}, err
		}
		defer resp.Body.Close()
		var st server.JobStatus
		return st, json.NewDecoder(resp.Body).Decode(&st)
	}
	st, err := submit()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "submitted %s: state=%s predicted pairs=%.0f over %d rounds\n",
		st.ID, st.State, st.PredictedPairs, st.PredictedRounds)

	// Poll until done, reporting chain-step progress.
	lastStep := ""
	for st.State == server.StateQueued || st.State == server.StateRunning {
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if st.CurrentStep != "" && st.CurrentStep != lastStep {
			lastStep = st.CurrentStep
			fmt.Fprintf(w, "  progress: step %d (%s)\n", st.StepsDone, st.CurrentStep)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != server.StateDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	fmt.Fprintf(w, "done: %d tuples, %d intermediate pairs over %d rounds\n",
		st.OutputTuples, st.Stats.IntermediatePairs(), len(st.Stats.Rounds))

	// Page through the result.
	var firstPage server.ResultPage
	resp, err := http.Get(base + "/v1/jobs/" + st.ID + "/result?limit=5")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&firstPage)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "first page: %d of %d tuples\n", firstPage.Count, firstPage.Total)
	for _, ids := range firstPage.Tuples {
		fmt.Fprintf(w, "  cities[%d] ⋈ forests[%d] ⋈ rivers[%d]\n", ids[0], ids[1], ids[2])
	}

	// The same submission again: answered from the byte-budgeted LRU
	// cache, keyed on (query, method, dataset fingerprints) — no new
	// map-reduce jobs run.
	runsBefore := reg.Counter("spatial_runs_total").Value()
	again, err := submit()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "resubmitted: cached=%v state=%s (cache hits=%d, new executions=%d)\n",
		again.Cached, again.State,
		reg.Counter("server_cache_hits_total").Value(),
		reg.Counter("spatial_runs_total").Value()-runsBefore)

	// Drain the service before the HTTP listener goes away.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return svc.Close(ctx)
}
