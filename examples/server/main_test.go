package main

import (
	"strings"
	"testing"
)

// TestServerExample runs the walkthrough on a small workload: the job
// must complete over HTTP and the repeated submission must be a cache
// hit that runs no new executions.
func TestServerExample(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 300); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"service listening on",
		"registered cities",
		"registered forests",
		"registered rivers",
		"submitted j000001",
		"done:",
		"first page:",
		"resubmitted: cached=true state=done (cache hits=1, new executions=0)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
