package main

import (
	"regexp"
	"strings"
	"testing"
)

// TestMetricsServer runs the walkthrough on a small workload: the
// self-scrape must surface the run counters and the skew section must
// print the quantiles and imbalance factor.
func TestMetricsServer(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 500); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"/metrics ==",
		"spatial_runs_total 1",
		"spatial_intermediate_pairs_total",
		"mapreduce_jobs_total",
		"== reducer skew",
		"imbalance factor",
		"suggested trace-tree skew threshold",
		"spatial_cell_candidates",
		"spatial_cell_tuples",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// The quantile line carries real numbers in order p50 ≤ p95 ≤ max.
	m := regexp.MustCompile(`pairs per reducer: p50=(\d+) p95=(\d+) max=(\d+)`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no skew quantile line:\n%s", text)
	}
	if m[1] > m[3] && len(m[1]) >= len(m[3]) {
		t.Errorf("p50 %s exceeds max %s", m[1], m[3])
	}
	// Totals printed from the registry equal the Stats printed beside
	// them: "N (stats N)" with identical numbers.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "(stats ") {
			f := regexp.MustCompile(`(\d+) \(stats (\d+)\)`).FindStringSubmatch(line)
			if f == nil || f[1] != f[2] {
				t.Errorf("registry total disagrees with Stats: %q", line)
			}
		}
	}
}
