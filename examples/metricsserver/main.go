// Metricsserver walks through the live observability surface: attach a
// metrics registry to a Controlled-Replicate run, serve it over HTTP
// while the join executes, scrape our own /metrics endpoint the way a
// Prometheus collector would, and read the per-reducer skew
// distribution (p50/p95/max and the imbalance factor) off the
// registry's histograms.
//
//	go run ./examples/metricsserver
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"

	"mwsjoin"
	"mwsjoin/internal/mapreduce"
)

func main() {
	if err := run(os.Stdout, 4000); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, n int) error {
	p := mwsjoin.PaperSyntheticParams(n)
	p.XMax, p.YMax = 10_000, 10_000
	rels := make([]mwsjoin.Relation, 3)
	for i := range rels {
		rel, err := mwsjoin.SyntheticRelation(fmt.Sprintf("R%d", i+1), p, uint64(i+1))
		if err != nil {
			return err
		}
		rels[i] = rel
	}
	q, err := mwsjoin.ParseQuery("R1 ov R2 and R2 ov R3")
	if err != nil {
		return err
	}

	// The registry is live: the server binds before the run starts, so a
	// collector scraping during the join sees the counters climb.
	reg := mwsjoin.NewMetricsRegistry()
	addr, shutdown, err := mwsjoin.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		return err
	}
	defer shutdown() //nolint:errcheck // best-effort on exit

	res, err := mwsjoin.Run(q, rels, mwsjoin.ControlledReplicate, &mwsjoin.Options{
		Reducers:  16,
		Metrics:   reg,
		CountOnly: true,
	})
	if err != nil {
		return err
	}

	// Scrape our own endpoint, exactly as Prometheus would.
	fmt.Fprintf(w, "== scraping http://%s/metrics ==\n", addr)
	body, err := scrape("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "spatial_") || strings.HasPrefix(line, "mapreduce_jobs_total") {
			fmt.Fprintln(w, line)
		}
	}

	// The registry's totals are the run's Stats, by construction.
	snap := reg.Snapshot()
	fmt.Fprintf(w, "\n== totals vs Stats ==\n")
	fmt.Fprintf(w, "output tuples:      %d (stats %d)\n",
		snap.Counters["spatial_output_tuples_total"], res.Stats.OutputTuples)
	fmt.Fprintf(w, "intermediate pairs: %d (stats %d)\n",
		snap.Counters["spatial_intermediate_pairs_total"], res.Stats.IntermediatePairs())

	// Per-reducer skew: the distribution of intermediate pairs across
	// every reducer of every job, and the derived warning threshold the
	// trace tree export uses.
	h := snap.Histograms[mapreduce.ReducerPairsHistogram]
	fmt.Fprintf(w, "\n== reducer skew (%d reducer observations) ==\n", h.Count)
	fmt.Fprintf(w, "pairs per reducer: p50=%d p95=%d max=%d\n",
		h.Quantile(0.5), h.Quantile(0.95), h.Max)
	fmt.Fprintf(w, "imbalance factor (max/mean): %.2f\n", h.Imbalance())
	fmt.Fprintf(w, "suggested trace-tree skew threshold: %.2f\n",
		mwsjoin.SuggestedSkewThreshold(reg))

	// Grid-cell skew from the spatial layer: candidate and output
	// distributions across reducer cells.
	var names []string
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "spatial_cell_") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		ch := snap.Histograms[name]
		fmt.Fprintf(w, "%s: p50=%d p95=%d max=%d imbalance=%.2f\n",
			name, ch.Quantile(0.5), ch.Quantile(0.95), ch.Max, ch.Imbalance())
	}
	return nil
}

// scrape GETs a URL and returns the body.
func scrape(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}
