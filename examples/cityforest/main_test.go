package main

import (
	"strings"
	"testing"
)

// TestCityforest runs the motivating query on small layers; the
// example itself asserts cross-method agreement.
func TestCityforest(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 250, 120, 80); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"query: city ov river and city ra(50) forest",
		"c-rep-l",
		"all methods agree on",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
