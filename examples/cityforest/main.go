// Cityforest reproduces the paper's motivating query from §1: "find
// all cities adjacent to a forest and overlapping with a river" — a
// 3-way hybrid join mixing an overlap predicate with a range
// ("adjacent" = within distance) predicate.
//
// The example generates three clustered synthetic layers (cities,
// forests, rivers), runs the hybrid query with every method, and shows
// that they agree on the answer while shipping very different amounts
// of data — the paper's core claim.
//
//	go run ./examples/cityforest
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"mwsjoin"
)

func layer(name string, n int, maxDim float64, seed uint64) (mwsjoin.Relation, error) {
	p := mwsjoin.PaperSyntheticParams(n)
	p.XMax, p.YMax = 20_000, 20_000
	p.LMax, p.BMax = maxDim, maxDim
	return mwsjoin.SyntheticRelation(name, p, seed)
}

func main() {
	if err := run(os.Stdout, 4000, 1500, 800); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, nCities, nForests, nRivers int) error {
	cities, err := layer("city", nCities, 120, 11)
	if err != nil {
		return err
	}
	forests, err := layer("forest", nForests, 400, 22)
	if err != nil {
		return err
	}
	rivers, err := layer("river", nRivers, 900, 33)
	if err != nil {
		return err
	}

	// city overlaps river, city within 50 units of a forest.
	q, err := mwsjoin.ParseQuery("city ov river and city ra(50) forest")
	if err != nil {
		return err
	}
	rels := []mwsjoin.Relation{cities, rivers, forests} // slot order: city, river, forest

	fmt.Fprintf(w, "query: %s\n", q)
	fmt.Fprintf(w, "layers: %d cities, %d forests, %d rivers\n\n",
		len(cities.Items), len(forests.Items), len(rivers.Items))
	fmt.Fprintf(w, "%-16s %10s %12s %14s %12s\n", "method", "time", "tuples", "kv-pairs", "replicated")

	var reference map[string]bool
	for _, m := range mwsjoin.Methods() {
		start := time.Now()
		res, err := mwsjoin.Run(q, rels, m, &mwsjoin.Options{Reducers: 16})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %10v %12d %14d %12d\n",
			m, time.Since(start).Round(time.Millisecond),
			len(res.Tuples), res.Stats.IntermediatePairs(), res.Stats.RectanglesReplicated)

		set := res.TupleSet()
		if reference == nil {
			reference = set
		} else if len(set) != len(reference) {
			return fmt.Errorf("%v disagrees with the reference result", m)
		}
	}
	fmt.Fprintf(w, "\nall methods agree on %d (city, river, forest) triples\n", len(reference))
	return nil
}
