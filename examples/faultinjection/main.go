// Faultinjection demonstrates the engine's Hadoop-style task retry on
// both sides of the shuffle: a join runs while every job's mapper 0
// crashes twice before succeeding and every third reducer crashes
// once, and the result is identical to the failure-free run.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"reflect"

	"mwsjoin"
)

func main() {
	if err := run(os.Stdout, 5000); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, n int) error {
	p := mwsjoin.PaperSyntheticParams(n)
	p.XMax, p.YMax = 10_000, 10_000
	r1, err := mwsjoin.SyntheticRelation("R1", p, 1)
	if err != nil {
		return err
	}
	r2, err := mwsjoin.SyntheticRelation("R2", p, 2)
	if err != nil {
		return err
	}
	q, err := mwsjoin.ParseQuery("R1 ov R2")
	if err != nil {
		return err
	}
	rels := []mwsjoin.Relation{r1, r2}

	clean, err := mwsjoin.Run(q, rels, mwsjoin.ControlledReplicate, nil)
	if err != nil {
		return err
	}

	faulty, err := mwsjoin.Run(q, rels, mwsjoin.ControlledReplicate, &mwsjoin.Options{
		MaxAttempts: 3,
		FailMap: func(mapper, attempt int) bool {
			return mapper == 0 && attempt <= 2 // crash twice, succeed third
		},
		FailReduce: func(reducer, attempt int) bool {
			return reducer%3 == 0 && attempt == 1 // crash once, succeed second
		},
	})
	if err != nil {
		return err
	}

	var mapAttempts, mapFailures, redAttempts, redFailures int64
	for _, r := range faulty.Stats.Rounds {
		mapAttempts += r.MapAttempts
		mapFailures += r.MapFailures
		redAttempts += r.ReduceAttempts
		redFailures += r.ReduceFailures
	}
	fmt.Fprintf(w, "clean run:   %d tuples\n", len(clean.Tuples))
	fmt.Fprintf(w, "faulty run:  %d tuples, %d map attempts (%d crashed), %d reduce attempts (%d crashed)\n",
		len(faulty.Tuples), mapAttempts, mapFailures, redAttempts, redFailures)
	if mapFailures == 0 || redFailures == 0 {
		return fmt.Errorf("fault injection never fired (map=%d reduce=%d)", mapFailures, redFailures)
	}
	if !reflect.DeepEqual(clean.TupleSet(), faulty.TupleSet()) {
		return fmt.Errorf("results diverged under fault injection")
	}
	fmt.Fprintln(w, "results identical: task retry is transparent to the join")
	return nil
}
