// Faultinjection demonstrates the engine's Hadoop-style task retry:
// a join runs while every job's mapper 0 crashes twice before
// succeeding, and the result is identical to the failure-free run.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"
	"reflect"

	"mwsjoin"
)

func main() {
	p := mwsjoin.PaperSyntheticParams(5000)
	p.XMax, p.YMax = 10_000, 10_000
	r1, err := mwsjoin.SyntheticRelation("R1", p, 1)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := mwsjoin.SyntheticRelation("R2", p, 2)
	if err != nil {
		log.Fatal(err)
	}
	q, err := mwsjoin.ParseQuery("R1 ov R2")
	if err != nil {
		log.Fatal(err)
	}
	rels := []mwsjoin.Relation{r1, r2}

	clean, err := mwsjoin.Run(q, rels, mwsjoin.ControlledReplicate, nil)
	if err != nil {
		log.Fatal(err)
	}

	faulty, err := mwsjoin.Run(q, rels, mwsjoin.ControlledReplicate, &mwsjoin.Options{
		MaxAttempts: 3,
		FailMap: func(mapper, attempt int) bool {
			return mapper == 0 && attempt <= 2 // crash twice, succeed third
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	var attempts, failures int64
	for _, r := range faulty.Stats.Rounds {
		attempts += r.MapAttempts
		failures += r.MapFailures
	}
	fmt.Printf("clean run:   %d tuples\n", len(clean.Tuples))
	fmt.Printf("faulty run:  %d tuples, %d map attempts, %d injected crashes\n",
		len(faulty.Tuples), attempts, failures)
	if !reflect.DeepEqual(clean.TupleSet(), faulty.TupleSet()) {
		log.Fatal("results diverged under fault injection")
	}
	fmt.Println("results identical: task retry is transparent to the join")
}
