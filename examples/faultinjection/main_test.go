package main

import (
	"strings"
	"testing"
)

// TestFaultinjection runs the example on a small workload: both fault
// kinds must fire and the runs must still agree.
func TestFaultinjection(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 400); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"clean run:", "faulty run:", "results identical"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
