// Quickstart: evaluate a 3-way overlap join on a handful of rectangles
// through the public API and print the matching triples.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"mwsjoin"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Three tiny relations. A rectangle is (x, y, l, b): start-point
	// (top-left vertex), length and breadth.
	r1 := mwsjoin.NewRelation("R1", []mwsjoin.Rect{
		{X: 0, Y: 10, L: 4, B: 4},  // id 0: overlaps R2's id 0
		{X: 50, Y: 60, L: 3, B: 3}, // id 1: isolated
	})
	r2 := mwsjoin.NewRelation("R2", []mwsjoin.Rect{
		{X: 3, Y: 9, L: 4, B: 4},   // id 0: bridges R1/0 and R3/0
		{X: 70, Y: 90, L: 2, B: 2}, // id 1: isolated
	})
	r3 := mwsjoin.NewRelation("R3", []mwsjoin.Rect{
		{X: 6, Y: 8, L: 4, B: 4}, // id 0: overlaps R2's id 0
	})

	// The paper's Q2: a chain of overlaps.
	q, err := mwsjoin.ParseQuery("R1 ov R2 and R2 ov R3")
	if err != nil {
		return err
	}

	// Run with the paper's Controlled-Replicate-in-Limit on a 4-reducer
	// simulated cluster.
	res, err := mwsjoin.Run(q, []mwsjoin.Relation{r1, r2, r3},
		mwsjoin.ControlledReplicateLimit, &mwsjoin.Options{Reducers: 4})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "query: %s\n", q)
	fmt.Fprintf(w, "tuples (%d):\n", len(res.Tuples))
	for _, t := range res.Tuples {
		fmt.Fprintf(w, "  R1[%d] ⋈ R2[%d] ⋈ R3[%d]\n", t.IDs[0], t.IDs[1], t.IDs[2])
	}
	fmt.Fprintf(w, "intermediate key-value pairs: %d\n", res.Stats.IntermediatePairs())
	fmt.Fprintf(w, "rectangles replicated:        %d\n", res.Stats.RectanglesReplicated)
	return nil
}
