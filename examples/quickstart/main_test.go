package main

import (
	"strings"
	"testing"
)

// TestQuickstart runs the example end to end and checks the one
// expected triple appears.
func TestQuickstart(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"query: R1 ov R2 and R2 ov R3",
		"tuples (1):",
		"R1[0] ⋈ R2[0] ⋈ R3[0]",
		"intermediate key-value pairs:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
