package main

import (
	"strings"
	"testing"
)

// TestTracing runs the walkthrough on a small workload: the tree must
// show the full hierarchy and every job's counters must match Stats.
func TestTracing(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 400); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"span tree",
		"run",
		"mark",
		"join",
		"shuffle",
		"match=true",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "match=false") {
		t.Errorf("a job span disagreed with Stats:\n%s", text)
	}
}
