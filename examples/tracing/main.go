// Tracing walks through the structured tracing layer: attach a Tracer
// to a Controlled-Replicate run, print the human-readable span tree
// (run → mark/join rounds → jobs → map/shuffle/reduce phases with
// per-phase counters and reducer-skew flags), and show how the JSON
// timeline decomposes the flat Stats totals per job.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"mwsjoin"
	"mwsjoin/internal/trace"
)

func main() {
	if err := run(os.Stdout, 4000); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, n int) error {
	p := mwsjoin.PaperSyntheticParams(n)
	p.XMax, p.YMax = 10_000, 10_000
	rels := make([]mwsjoin.Relation, 3)
	for i := range rels {
		rel, err := mwsjoin.SyntheticRelation(fmt.Sprintf("R%d", i+1), p, uint64(i+1))
		if err != nil {
			return err
		}
		rels[i] = rel
	}
	q, err := mwsjoin.ParseQuery("R1 ov R2 and R2 ra(100) R3")
	if err != nil {
		return err
	}

	// One tracer records the whole execution; the same tracer could
	// collect several sequential runs for comparison.
	tracer := mwsjoin.NewTracer()
	res, err := mwsjoin.Run(q, rels, mwsjoin.ControlledReplicate, &mwsjoin.Options{
		Reducers: 16,
		Tracer:   tracer,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "query: %s  →  %d tuples\n\n", q, len(res.Tuples))
	fmt.Fprintln(w, "── span tree ──")
	if err := tracer.WriteTree(w); err != nil {
		return err
	}

	// The JSON timeline carries the same spans machine-readably; each
	// job span's counters mirror the Stats entry of its round exactly.
	var timeline strings.Builder
	if err := tracer.WriteJSON(&timeline); err != nil {
		return err
	}
	spans, err := trace.ReadJSON(strings.NewReader(timeline.String()))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n── JSON timeline: %d spans, job counters vs Stats ──\n", len(spans))
	jobIdx := 0
	for _, s := range spans {
		if s.Kind != trace.KindJob {
			continue
		}
		st := res.Stats.Rounds[jobIdx]
		fmt.Fprintf(w, "job %-12s trace pairs=%-8d stats pairs=%-8d match=%v\n",
			s.Name, s.Counter("pairs"), st.IntermediatePairs,
			s.Counter("pairs") == st.IntermediatePairs)
		jobIdx++
	}
	return nil
}
