#!/bin/sh
# check.sh — the expanded tier-1 gate: gofmt, vet, build, race-enabled
# tests, an observability smoke test and a short parser fuzz. Run from
# the repo root (or via `make check`).
#
# The original tier-1 gate was `go build ./... && go test ./...`; this
# script is a strict superset and is what CI and pre-commit runs should
# call.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== serve smoke (scraped /metrics counters == final Stats) =="
go test -run 'TestServeSmoke' -count=1 ./cmd/mwsjoin

echo "== chain recovery + speculative equivalence under -race (pinned seeds) =="
# Deterministic by construction (seeded rand.NewPCG workloads, kill
# points at every job boundary); -count=1 defeats the test cache so the
# race detector actually re-exercises the speculative backup goroutines.
go test -race -count=1 \
    -run 'TestChainKillResumeEveryBoundary|TestSpeculativeEquivalence|TestSpeculativeWithRetries|TestFaultInjectionStatsBitEqual' \
    ./internal/mapreduce
go test -race -count=1 \
    -run 'TestKillResumeEveryJobBoundary|TestKillResumeRandomizedWorkload|TestSpeculativeSpatialEquivalence' \
    ./internal/spatial

echo "== adaptive-partition battery under -race (bit-identity, faults, kill/resume, 5x skew) =="
# The skewed-workload equivalence battery: adaptive vs uniform tuple
# identity across methods × parallelism, fault injection, kill/resume
# at every chain boundary, per-cell R-tree-vs-sweep identity, and the
# ≥5× max/median reducer-skew improvement; -count=1 defeats the cache.
go test -race -count=1 \
    -run 'TestAdaptiveUniformBitIdentical|TestAdaptiveFaultInjectionBitIdentical|TestAdaptiveKillResumeEveryBoundary|TestAdaptiveSkewImprovement|TestJoinSortedDenseMatchesSweep|TestCascadeRTreeEscalationBitIdentical' \
    ./internal/spatial
go test -race -count=1 -run 'TestBenchPR6Anchor' .

echo "== join service e2e under -race (daemon on :0, submit→poll→result→cancel) =="
# The daemon binds a free loopback port and the test drives the whole
# lifecycle over real HTTP, asserting bit-identical stats vs a serial
# run and a cache hit on resubmission; -count=1 so the race detector
# re-exercises the scheduler/worker goroutines every run.
go test -race -count=1 -run 'TestDaemonEndToEnd' ./cmd/mwsjoind
go test -race -count=1 -run 'TestServerExample' ./examples/server

echo "== observability v2 under -race (profiles, calibration loop, SLOs, slowlog) =="
# Determinism invariant (normalized profiles byte-identical across
# parallelism/faults/kill-resume), Chrome trace schema validation,
# calibration strictly tightening prediction error without changing
# results, and the daemon e2e with profiling + calibrated admission +
# slowlog/status endpoints; the ≤5% profiling-overhead acceptance bar
# lives in the committed BENCH_PR7.json anchor. -count=1 defeats the
# cache so the race detector re-exercises the server goroutines.
go test -race -count=1 ./internal/profile
go test -race -count=1 \
    -run 'TestServerProfileAndSlowlog|TestSlowlogOrderAndCap|TestServerStatusInfo|TestServerCalibratedAdmission|TestHTTPObservabilityEndpoints' \
    ./internal/server
go test -race -count=1 -run 'TestProfileCalibrateFlags' ./cmd/mwsjoin
go test -race -count=1 -run 'TestDaemonObservabilityEndToEnd' ./cmd/mwsjoind
go test -race -count=1 -run 'TestBenchPR7Anchor' .

echo "== cost-based planner battery under -race (degenerate inputs, equivalence, determinism) =="
# The DESIGN.md §4h planner gate: every degenerate input yields a valid
# finite-cost plan matching the brute-force oracle; the chosen plan is
# tuple-identical under parallelism × faults × kill/resume; planning is
# deterministic (same query + stats ⇒ same plan, fuzzed below); the
# daemon's "auto" path prices the plan that actually runs; and the
# committed BENCH_PR9.json anchor holds the planner within 1.1× of the
# best hand-picked method on the workload matrix. -count=1 defeats the
# cache so the race detector re-exercises the enumeration every run.
go test -race -count=1 \
    -run 'TestPlannerDegenerateBattery|TestPlannerEquivalenceBattery|TestPlannerDeterminism|TestPlannerPinnedGrid|TestPredictFiniteOnDegenerateInputs|TestPredictHostileCalibration|TestCalibrationFactorRejectsUnusable' \
    ./internal/spatial
go test -race -count=1 -run 'TestCalibrateDegenerateEntries' ./internal/profile
go test -race -count=1 -run 'TestSubmitAutoMethod' ./internal/server
go test -race -count=1 -run 'TestRunAutoMethod|TestExplainPlanFlag' ./cmd/mwsjoin
go test -race -count=1 -run 'TestBenchPR9Anchor' .

echo "== fuzz (FuzzPlannerDeterminism, 5s) =="
go test -run='^$' -fuzz=FuzzPlannerDeterminism -fuzztime=5s ./internal/spatial

echo "== paper-scale memory battery under -race (columnar + pooled + spill bit-identity, 1-byte budget) =="
# The DESIGN.md §4g equivalence battery: every sorted run spills under
# the deliberately tiny budget, and tuples/Stats/DFS charges must stay
# bit-identical to the boxed in-memory engine across methods ×
# parallelism × faults × speculation × kill/resume; -count=1 defeats
# the cache so the race detector re-exercises the spill/recycle paths.
go test -race -count=1 \
    -run 'TestSpillEquivalence|TestSpillBudgetThreshold|TestSpillDecodeErrorSurfaces|TestPooledEquivalence|TestPooledSpillWordCount|TestSortedRunAllocationBudget|TestColumnarSpillEquivalenceBattery|TestColumnarSpillSpeculative|TestColumnarSpillKillResume' \
    ./internal/mapreduce ./internal/spatial
go test -race -count=1 ./internal/dfs

echo "== unit-200,000 smoke (10x table scale through the memory path; timeout-guarded) =="
# Runs the BENCH_PR8 live measurement with the join at unit = 200,000
# (three 200k-rectangle relations, columnar + pooled + spilling); the
# timeout keeps a pathological regression from hanging CI.
MWSJ_BENCH_UNIT=200000 go test -count=1 -timeout 300s -run 'TestBenchPR8Anchor' .

echo "== distributed runtime under -race (SPMD equivalence, network shuffle, recovery) =="
# The DESIGN.md §4i gate: engine- and spatial-level SPMD bit-identity
# (W ∈ {1,3}, all four methods, spill/no-combiner axes, exact DFS
# reconciliation with network bytes in their own Stats family), the
# cluster package over real loopback TCP (mesh shuffle, heartbeat
# death detection, checkpoint sync + re-execution, roster hash
# cross-check), the server dispatch path, and the BufferPool misuse
# battery; -count=1 defeats the cache so the race detector
# re-exercises the exchange/rendezvous goroutines every run.
go test -race -count=1 -run 'TestDist|TestPoolDoublePut|TestPoolCrossJobReuse' ./internal/mapreduce
go test -race -count=1 -run 'TestDistributed' ./internal/spatial
go test -race -count=1 ./internal/cluster
go test -race -count=1 -run 'TestServerClusterDispatch' ./internal/server

echo "== cluster e2e under -race (daemon coordinator + 3 real worker processes, SIGKILL mid-round) =="
# Boots mwsjoind -cluster-listen plus three mwsjworker OS processes on
# loopback, submits the cascade join over HTTP, and one worker
# SIGKILLs itself before its 4th shuffle exchange (mid round 2): the
# coordinator must detect the death, sync checkpoints onto the two
# survivors, re-execute the interrupted round, and serve tuples
# bit-identical to the in-process engine.
go test -race -count=1 -run 'TestDaemonClusterEndToEnd' ./cmd/mwsjoind
go test -race -count=1 -run 'TestBenchPR10Anchor' .

echo "== fuzz (FuzzParseQuery, 5s) =="
go test -run='^$' -fuzz=FuzzParseQuery -fuzztime=5s ./internal/query

echo "== fuzz (FuzzKeyRanker, 5s) =="
go test -run='^$' -fuzz=FuzzKeyRanker -fuzztime=5s ./internal/mapreduce

echo "== fuzz (FuzzRTreeProbe, 5s) =="
go test -run='^$' -fuzz=FuzzRTreeProbe -fuzztime=5s ./internal/index

echo "== shuffle pipeline bench smoke (1 iteration per benchmark) =="
go test -run='^$' -bench . -benchtime=1x ./internal/mapreduce

echo "== check.sh: all green =="
