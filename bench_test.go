package mwsjoin

// Benchmarks regenerating the paper's evaluation (one benchmark per
// table, Tables 2–9 — the complete set of reported measurements; the
// paper's figures are illustrative diagrams, not data series), plus
// per-method benchmarks on a fixed workload.
//
// The table benchmarks run each table's full sweep once per iteration
// at a small scale (override with MWSJ_BENCH_UNIT). For the full-scale
// regeneration used in EXPERIMENTS.md run:
//
//	go run ./cmd/benchtables
//
// ReportMetric exposes the paper's §7.8.3 cost metrics per benchmark:
// kv-pairs/op (intermediate pairs) and replicated/op.

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"mwsjoin/internal/bench"
	"mwsjoin/internal/dataset"
	"mwsjoin/internal/spatial"
)

// benchUnit is the rectangles-per-paper-million scale for the table
// benchmarks.
func benchUnit() int {
	if env := os.Getenv("MWSJ_BENCH_UNIT"); env != "" {
		if v, err := strconv.Atoi(env); err == nil && v > 0 {
			return v
		}
	}
	return 2000
}

// benchTable runs one paper table per iteration and reports aggregate
// cost metrics of the final iteration.
func benchTable(b *testing.B, gen func(bench.Config) (*bench.Table, error)) {
	cfg := bench.Config{Unit: benchUnit(), Seed: 2013, SkipSlow: true}
	b.ReportAllocs()
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := gen(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	var pairs, repl, tuples int64
	for _, row := range last.Rows {
		tuples += row.Tuples
		for _, c := range row.Cells {
			pairs += c.Pairs
			repl += c.Replicated
		}
	}
	b.ReportMetric(float64(pairs), "kv-pairs/op")
	b.ReportMetric(float64(repl), "replicated/op")
	b.ReportMetric(float64(tuples), "tuples/op")
}

func BenchmarkTable2(b *testing.B) { benchTable(b, bench.Table2) }
func BenchmarkTable3(b *testing.B) { benchTable(b, bench.Table3) }
func BenchmarkTable4(b *testing.B) { benchTable(b, bench.Table4) }
func BenchmarkTable5(b *testing.B) { benchTable(b, bench.Table5) }
func BenchmarkTable6(b *testing.B) { benchTable(b, bench.Table6) }
func BenchmarkTable7(b *testing.B) { benchTable(b, bench.Table7) }
func BenchmarkTable8(b *testing.B) { benchTable(b, bench.Table8) }
func BenchmarkTable9(b *testing.B) { benchTable(b, bench.Table9) }

// BenchmarkMethods compares the five methods on one fixed Q2-style
// workload (three synthetic relations at the bench scale), reporting
// the communication metrics per method.
func BenchmarkMethods(b *testing.B) {
	n := benchUnit()
	rels := make([]Relation, 3)
	for i := range rels {
		p := PaperSyntheticParams(n)
		// Density-preserving space (see internal/bench): area scales
		// with the count.
		p.XMax = 100_000 * sqrtRatio(n)
		p.YMax = p.XMax
		rel, err := SyntheticRelation(fmt.Sprintf("R%d", i+1), p, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = rel
	}
	q := NewQuery("R1", "R2", "R3").Overlap(0, 1).Overlap(1, 2)

	for _, m := range Methods() {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var stats Stats
			for i := 0; i < b.N; i++ {
				res, err := Run(q, rels, m, nil)
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.IntermediatePairs()), "kv-pairs/op")
			b.ReportMetric(float64(stats.RectanglesReplicated), "replicated/op")
			b.ReportMetric(float64(stats.OutputTuples), "tuples/op")
		})
	}
}

// BenchmarkReducerIndexAblation compares the two reducer-local index
// structures (bucket grid vs STR R-tree) inside C-Rep-L on uniform and
// skewed (road) workloads — the DESIGN.md ablation for the index
// choice.
func BenchmarkReducerIndexAblation(b *testing.B) {
	n := benchUnit()
	uniform := make([]Relation, 3)
	for i := range uniform {
		p := PaperSyntheticParams(n)
		p.XMax = 100_000 * sqrtRatio(n)
		p.YMax = p.XMax
		rel, err := SyntheticRelation(fmt.Sprintf("R%d", i+1), p, uint64(10+i))
		if err != nil {
			b.Fatal(err)
		}
		uniform[i] = rel
	}
	roads := CaliforniaRoadsRelation("roads", 2*n, 7)
	q := NewQuery("a", "b", "c").Overlap(0, 1).Overlap(1, 2)

	for _, tc := range []struct {
		name string
		rels []Relation
	}{
		{"uniform", uniform},
		{"roads", []Relation{roads, roads, roads}},
	} {
		for _, rtree := range []bool{false, true} {
			name := tc.name + "/grid-index"
			if rtree {
				name = tc.name + "/rtree-index"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Run(q, tc.rels, ControlledReplicateLimit, &Options{UseRTree: rtree}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLimitMetricAblation compares the Chebyshev (safe default)
// and Euclidean (paper) C-Rep-L limit metrics on a range query — the
// DESIGN.md §3.2 ablation.
func BenchmarkLimitMetricAblation(b *testing.B) {
	n := benchUnit()
	rels := make([]Relation, 3)
	for i := range rels {
		p := PaperSyntheticParams(n)
		p.XMax = 100_000 * sqrtRatio(n)
		p.YMax = p.XMax
		rel, err := SyntheticRelation(fmt.Sprintf("R%d", i+1), p, uint64(20+i))
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = rel
	}
	q := NewQuery("R1", "R2", "R3").Range(0, 1, 100).Range(1, 2, 100)
	for _, euclid := range []bool{false, true} {
		name := "chebyshev"
		if euclid {
			name = "euclidean"
		}
		b.Run(name, func(b *testing.B) {
			var pairs int64
			for i := 0; i < b.N; i++ {
				res, err := Run(q, rels, ControlledReplicateLimit, &Options{EuclideanLimit: euclid})
				if err != nil {
					b.Fatal(err)
				}
				pairs = res.Stats.IntermediatePairs()
			}
			b.ReportMetric(float64(pairs), "kv-pairs/op")
		})
	}
}

// sqrtRatio returns √(n / 1e6), the density-preserving space scale.
func sqrtRatio(n int) float64 {
	return math.Sqrt(float64(n) / 1e6)
}

var _ = spatial.Methods // keep the spatial import anchored for docs links

// BenchmarkPartitioningAblation compares the uniform grid (the paper's
// setup) against the quantile grid on the skewed road workload,
// reporting the reducer-load skew of the C-Rep-L join round. The
// quantile grid exploits the §4 definition's generality (cells need
// equal size only within a row/column) to balance reducers under skew.
func BenchmarkPartitioningAblation(b *testing.B) {
	n := benchUnit()
	roads := CaliforniaRoadsRelation("roads", 2*n, 7)
	rels := []Relation{roads, roads, roads}
	q := NewQuery("a", "b", "c").Overlap(0, 1).Overlap(1, 2)

	uniform, err := spatial.DefaultPartitioning(rels, 64)
	if err != nil {
		b.Fatal(err)
	}
	quantile, err := QuantilePartitioning(rels, 64)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		part *Partitioning
	}{
		{"uniform", uniform},
		{"quantile", quantile},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var skew float64
			for i := 0; i < b.N; i++ {
				res, err := Run(q, rels, ControlledReplicateLimit, &Options{Partitioning: tc.part})
				if err != nil {
					b.Fatal(err)
				}
				skew = res.Stats.Rounds[len(res.Stats.Rounds)-1].MaxReducerSkew()
			}
			b.ReportMetric(skew, "reducer-skew")
		})
	}
}

// BenchmarkAdaptivePartitioningSkew is the PR6 headline comparison at
// bench scale: the uniform grid versus the sample-driven adaptive
// partitioning on the Zipf-clustered skewed workload, reporting the
// C-Rep-L join round's max/median reducer-pair skew (the committed
// full-scale numbers live in BENCH_PR6.json).
func BenchmarkAdaptivePartitioningSkew(b *testing.B) {
	n := benchUnit()
	rels := make([]Relation, 3)
	for i, name := range []string{"R1", "R2", "R3"} {
		rel, err := dataset.ZipfClusteredRelation(name, dataset.SkewedDefaults(n), 2013)
		if err != nil {
			b.Fatal(err)
		}
		rels[i] = rel
	}
	q := NewQuery("R1", "R2", "R3").Overlap(0, 1).Overlap(1, 2)
	for _, partition := range []string{"uniform", "adaptive"} {
		b.Run(partition, func(b *testing.B) {
			var skew float64
			for i := 0; i < b.N; i++ {
				res, err := Run(q, rels, ControlledReplicateLimit,
					&Options{Partition: partition, CountOnly: true})
				if err != nil {
					b.Fatal(err)
				}
				skew = res.Stats.Rounds[len(res.Stats.Rounds)-1].MaxMedianReducerSkew()
			}
			b.ReportMetric(skew, "max-median-skew")
		})
	}
}
