# Convenience targets; `make check` is the expanded tier-1 gate
# (vet + build + race tests + short parser fuzz).

.PHONY: check test build vet fuzz bench

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

fuzz:
	go test -run='^$$' -fuzz=FuzzParseQuery -fuzztime=30s ./internal/query

bench:
	go test -bench=. -benchtime=1x ./...
